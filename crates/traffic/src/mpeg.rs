//! MPEG-2-style video-stream traffic.
//!
//! The paper cites Caminero et al.'s MPEG-2 multimedia traces [3]
//! (results omitted there "due to space constraints"; we include the
//! experiment as an extension). Real traces are not distributable, so
//! this generator reproduces their defining structure synthetically:
//! constant frame rate, a repeating 9-frame Group of Pictures
//! (I B B P B B P B B), and per-frame payload sizes that are large for
//! I frames, medium for P frames and small for B frames, with
//! multiplicative (lognormal-like) jitter. Each node streams to a fixed
//! partner half a mesh away, emitting at most one packet per cycle and
//! carrying a backlog across frames.

use crate::Traffic;
use noc_core::{Coord, Cycle, MeshConfig};
use rand::rngs::SmallRng;
use rand::Rng;

/// The Group-of-Pictures frame pattern.
pub const GOP_PATTERN: [FrameKind; 9] = [
    FrameKind::I,
    FrameKind::B,
    FrameKind::B,
    FrameKind::P,
    FrameKind::B,
    FrameKind::B,
    FrameKind::P,
    FrameKind::B,
    FrameKind::B,
];

/// MPEG frame types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Intra-coded frame (largest).
    I,
    /// Predicted frame (medium).
    P,
    /// Bidirectionally predicted frame (smallest).
    B,
}

impl FrameKind {
    /// Relative size of this frame type versus the GoP mean frame size.
    pub fn relative_size(self) -> f64 {
        match self {
            FrameKind::I => 3.0,
            FrameKind::P => 1.2,
            FrameKind::B => 0.5,
        }
    }
}

/// Cycles between successive frames.
const FRAME_PERIOD: u64 = 256;

/// Per-node video-stream generator.
#[derive(Debug, Clone)]
pub struct MpegTraffic {
    mesh: MeshConfig,
    rate_flits: f64,
    /// Mean packets per frame (before per-frame-type scaling).
    mean_frame_packets: f64,
    /// Outstanding packets per node awaiting emission.
    backlog: Vec<u32>,
    /// Next frame boundary per node (staggered across nodes).
    next_frame: Vec<Cycle>,
    /// Next GoP position per node.
    gop_pos: Vec<usize>,
    initialized: bool,
}

impl MpegTraffic {
    /// Creates the generator.
    pub fn new(mesh: MeshConfig, rate_flits: f64, flits_per_packet: u16) -> Self {
        let packet_rate = rate_flits / flits_per_packet as f64;
        // Mean GoP relative size:
        let mean_rel: f64 =
            GOP_PATTERN.iter().map(|f| f.relative_size()).sum::<f64>() / GOP_PATTERN.len() as f64;
        let mean_frame_packets = packet_rate * FRAME_PERIOD as f64 / mean_rel;
        let n = mesh.nodes();
        MpegTraffic {
            mesh,
            rate_flits,
            mean_frame_packets,
            backlog: vec![0; n],
            next_frame: vec![0; n],
            gop_pos: vec![0; n],
            initialized: false,
        }
    }

    /// The fixed streaming partner of `node`: the node half a mesh away
    /// in both dimensions (torus-style offset, so the pattern is a
    /// permutation and self-traffic never occurs on meshes ≥ 2×2).
    pub fn partner(&self, node: Coord) -> Coord {
        Coord::new(
            (node.x + self.mesh.width / 2) % self.mesh.width,
            (node.y + self.mesh.height / 2) % self.mesh.height,
        )
    }

    fn frame_packets(&self, kind: FrameKind, rng: &mut SmallRng) -> u32 {
        // Multiplicative jitter in [0.6, 1.4), approximating the
        // lognormal spread of real frame-size traces.
        let jitter: f64 = rng.gen_range(0.6..1.4);
        (self.mean_frame_packets * kind.relative_size() * jitter).round().max(0.0) as u32
    }
}

impl Traffic for MpegTraffic {
    fn generate(&mut self, node: Coord, cycle: Cycle, rng: &mut SmallRng) -> Option<Coord> {
        let idx = node.index(self.mesh.width);
        if !self.initialized && cycle == 0 {
            // Stagger stream phases so I-frames do not align mesh-wide.
            for (i, nf) in self.next_frame.iter_mut().enumerate() {
                *nf = (i as u64 * 37) % FRAME_PERIOD;
            }
            self.initialized = true;
        }
        if cycle >= self.next_frame[idx] {
            let kind = GOP_PATTERN[self.gop_pos[idx]];
            self.gop_pos[idx] = (self.gop_pos[idx] + 1) % GOP_PATTERN.len();
            let pkts = self.frame_packets(kind, rng);
            self.backlog[idx] = self.backlog[idx].saturating_add(pkts);
            self.next_frame[idx] += FRAME_PERIOD;
        }
        if self.backlog[idx] > 0 {
            self.backlog[idx] -= 1;
            Some(self.partner(node))
        } else {
            None
        }
    }

    fn offered_load(&self) -> f64 {
        self.rate_flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gop_pattern_shape() {
        assert_eq!(GOP_PATTERN.len(), 9);
        assert_eq!(GOP_PATTERN.iter().filter(|f| **f == FrameKind::I).count(), 1);
        assert_eq!(GOP_PATTERN.iter().filter(|f| **f == FrameKind::P).count(), 2);
        assert_eq!(GOP_PATTERN.iter().filter(|f| **f == FrameKind::B).count(), 6);
        assert!(FrameKind::I.relative_size() > FrameKind::P.relative_size());
        assert!(FrameKind::P.relative_size() > FrameKind::B.relative_size());
    }

    #[test]
    fn partner_is_fixed_and_not_self() {
        let t = MpegTraffic::new(MeshConfig::new(8, 8), 0.2, 4);
        for y in 0..8 {
            for x in 0..8 {
                let node = Coord::new(x, y);
                let p = t.partner(node);
                assert_ne!(p, node);
                assert_eq!(t.partner(node), p, "partner must be stable");
            }
        }
    }

    #[test]
    fn long_run_rate_approximates_target() {
        let mesh = MeshConfig::new(8, 8);
        let mut t = MpegTraffic::new(mesh, 0.3, 4);
        let mut rng = SmallRng::seed_from_u64(7);
        let node = Coord::new(5, 1);
        let cycles = 200_000u64;
        let packets = (0..cycles).filter(|&c| t.generate(node, c, &mut rng).is_some()).count();
        let measured = packets as f64 * 4.0 / cycles as f64;
        assert!((measured - 0.3).abs() < 0.05, "measured {measured}");
    }

    #[test]
    fn frames_arrive_in_bursts() {
        let mesh = MeshConfig::new(8, 8);
        let mut t = MpegTraffic::new(mesh, 0.2, 4);
        let mut rng = SmallRng::seed_from_u64(9);
        let node = Coord::new(0, 0);
        // Count per-frame-period emissions; I frames should produce
        // periods with several times the B-frame volume.
        let mut per_period = Vec::new();
        for f in 0..36u64 {
            let count = (0..FRAME_PERIOD)
                .filter(|i| t.generate(node, f * FRAME_PERIOD + i, &mut rng).is_some())
                .count();
            per_period.push(count);
        }
        let max = *per_period.iter().max().unwrap();
        let min = *per_period.iter().min().unwrap();
        assert!(max >= 2 * min.max(1), "expected I/B volume contrast, got {per_period:?}");
    }
}
