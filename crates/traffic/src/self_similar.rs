//! Self-similar traffic via Pareto on/off sources.
//!
//! The paper uses "self-similar web traffic" generated per Barford &
//! Crovella (SIGMETRICS '98) [1]. That generator's key mechanism is the
//! superposition of on/off sources whose on- and off-period lengths are
//! heavy-tailed (Pareto) — the canonical construction of self-similar
//! aggregate traffic (Hurst parameter `H = (3 − α) / 2 ≈ 0.875` for
//! `α = 1.25`). We reproduce exactly that mechanism per node, with
//! uniformly random destinations.

use crate::Traffic;
use noc_core::{Coord, Cycle, MeshConfig};
use rand::rngs::SmallRng;
use rand::Rng;

/// Pareto shape parameter for both on and off periods.
const ALPHA: f64 = 1.25;
/// Mean on-period length in cycles.
const MEAN_ON: f64 = 40.0;
/// Duty cycle (fraction of time a source is on). The on-period injection
/// probability is scaled so the long-run average hits the target rate.
const DUTY: f64 = 0.25;

/// Samples a Pareto-distributed duration with shape [`ALPHA`] and the
/// given mean, truncated to at least one cycle.
fn pareto(mean: f64, rng: &mut SmallRng) -> u64 {
    // For Pareto(x_m, α): mean = α·x_m/(α−1)  ⇒  x_m = mean·(α−1)/α.
    let x_m = mean * (ALPHA - 1.0) / ALPHA;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (x_m * u.powf(-1.0 / ALPHA)).ceil().max(1.0) as u64
}

#[derive(Debug, Clone, Copy)]
enum Phase {
    On,
    Off,
}

#[derive(Debug, Clone, Copy)]
struct SourceState {
    phase: Phase,
    /// Cycle at which the current phase ends.
    until: Cycle,
    initialized: bool,
}

impl Default for SourceState {
    fn default() -> Self {
        SourceState { phase: Phase::Off, until: 0, initialized: false }
    }
}

/// Per-node Pareto on/off burst source with uniform destinations.
#[derive(Debug, Clone)]
pub struct SelfSimilarTraffic {
    mesh: MeshConfig,
    rate_flits: f64,
    /// Packet-generation probability while a source is on.
    p_on: f64,
    /// Effective duty cycle after clamping `p_on` to 1.
    duty: f64,
    states: Vec<SourceState>,
}

impl SelfSimilarTraffic {
    /// Creates the generator.
    pub fn new(mesh: MeshConfig, rate_flits: f64, flits_per_packet: u16) -> Self {
        let packet_rate = rate_flits / flits_per_packet as f64;
        // Aim for DUTY; if the required on-probability would exceed 1,
        // widen the duty cycle instead.
        let mut duty = DUTY;
        let mut p_on = packet_rate / duty;
        if p_on > 1.0 {
            duty = packet_rate;
            p_on = 1.0;
        }
        SelfSimilarTraffic {
            mesh,
            rate_flits,
            p_on,
            duty,
            states: vec![SourceState::default(); mesh.nodes()],
        }
    }

    /// The burst-phase injection probability (packets/cycle while on).
    pub fn on_probability(&self) -> f64 {
        self.p_on
    }

    fn advance_phase(state: &mut SourceState, cycle: Cycle, duty: f64, rng: &mut SmallRng) {
        if !state.initialized {
            // Start each source at a random point of an off period so
            // sources are not phase-aligned at cycle 0.
            state.initialized = true;
            state.phase = if rng.gen_bool(duty) { Phase::On } else { Phase::Off };
            state.until = cycle + rng.gen_range(1..=MEAN_ON as u64);
            return;
        }
        while cycle >= state.until {
            let mean_off = MEAN_ON * (1.0 - duty) / duty;
            match state.phase {
                Phase::On => {
                    state.phase = Phase::Off;
                    state.until += pareto(mean_off, rng);
                }
                Phase::Off => {
                    state.phase = Phase::On;
                    state.until += pareto(MEAN_ON, rng);
                }
            }
        }
    }
}

impl Traffic for SelfSimilarTraffic {
    fn generate(&mut self, node: Coord, cycle: Cycle, rng: &mut SmallRng) -> Option<Coord> {
        let idx = node.index(self.mesh.width);
        let state = &mut self.states[idx];
        Self::advance_phase(state, cycle, self.duty, rng);
        if !matches!(state.phase, Phase::On) || !rng.gen_bool(self.p_on) {
            return None;
        }
        let n = self.mesh.nodes();
        let mut d = rng.gen_range(0..n - 1);
        if d >= idx {
            d += 1;
        }
        Some(Coord::from_index(d, self.mesh.width))
    }

    fn offered_load(&self) -> f64 {
        self.rate_flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn long_run_rate_approximates_target() {
        // A single on/off source's window average has enormous variance
        // (that is the point of self-similar traffic), so measure the
        // aggregate over all 64 sources — the superposition the
        // simulator actually offers to the network.
        let mesh = MeshConfig::new(8, 8);
        let mut t = SelfSimilarTraffic::new(mesh, 0.3, 4);
        let mut rng = SmallRng::seed_from_u64(17);
        let cycles = 100_000u64;
        let mut packets = 0usize;
        for c in 0..cycles {
            for n in 0..mesh.nodes() {
                if t.generate(Coord::from_index(n, mesh.width), c, &mut rng).is_some() {
                    packets += 1;
                }
            }
        }
        let measured = packets as f64 * 4.0 / (cycles as f64 * mesh.nodes() as f64);
        // Heavy-tailed periods converge slowly even aggregated; a 30%
        // tolerance still catches duty-cycle / scaling mistakes.
        assert!((measured - 0.3).abs() < 0.09, "measured flit rate {measured} too far from 0.3");
    }

    #[test]
    fn traffic_is_bursty() {
        // Variance of per-window packet counts should far exceed a
        // Poisson process of the same mean (index of dispersion >> 1).
        let mesh = MeshConfig::new(8, 8);
        let mut t = SelfSimilarTraffic::new(mesh, 0.2, 4);
        let mut rng = SmallRng::seed_from_u64(23);
        let node = Coord::new(1, 1);
        let window = 100u64;
        let windows = 2_000;
        let mut counts = Vec::with_capacity(windows);
        for w in 0..windows as u64 {
            let c = (0..window)
                .filter(|i| t.generate(node, w * window + i, &mut rng).is_some())
                .count();
            counts.push(c as f64);
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64;
        let dispersion = var / mean;
        assert!(dispersion > 2.0, "index of dispersion {dispersion} not bursty");
    }

    #[test]
    fn pareto_samples_have_heavy_tail() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut samples: Vec<u64> = (0..50_000).map(|_| pareto(40.0, &mut rng)).collect();
        // With α = 1.25 the variance is infinite, so the sample mean
        // never stabilises; the median is the convergent location
        // statistic. Pareto(x_m = 8, α = 1.25) has median
        // x_m · 2^(1/α) ≈ 13.9 (≈ 14 after the ceil).
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        assert!((11..=17).contains(&median), "median {median} far from 14");
        let max = *samples.last().unwrap();
        assert!(max > 400, "no heavy tail observed (max {max})");
        assert!(samples[0] >= 1);
    }

    #[test]
    fn high_rate_widens_duty_cycle() {
        let t = SelfSimilarTraffic::new(MeshConfig::new(4, 4), 1.0, 1);
        assert!((t.on_probability() - 1.0).abs() < 1e-12);
        assert!((t.offered_load() - 1.0).abs() < 1e-12);
    }
}
