//! # noc-traffic
//!
//! Workload generators for the RoCo reproduction (§5.4): uniform
//! random, transpose, self-similar web-like traffic (Pareto on/off, per
//! Barford & Crovella's construction) and MPEG-2-style GoP video
//! streams, plus hotspot and bit-complement extensions.
//!
//! A generator is polled once per node per cycle and answers with the
//! destination of a newly created packet, if any. Rates are expressed
//! in **flits/node/cycle** like the paper's x-axes; the generator
//! divides by the packet length internally.
//!
//! # Examples
//!
//! ```
//! use noc_core::{Coord, MeshConfig};
//! use noc_traffic::{Traffic, TrafficKind, build_traffic};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let mut traffic = build_traffic(TrafficKind::Uniform, MeshConfig::new(8, 8), 0.3, 4);
//! let maybe_dst = traffic.generate(Coord::new(0, 0), 0, &mut rng);
//! if let Some(dst) = maybe_dst {
//!     assert_ne!(dst, Coord::new(0, 0), "uniform traffic never self-addresses");
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod mpeg;
mod patterns;
mod replay;
mod self_similar;

pub use mpeg::{MpegTraffic, GOP_PATTERN};
pub use patterns::{BitComplementTraffic, HotspotTraffic, TransposeTraffic, UniformTraffic};
pub use replay::{ReplayEntry, ReplayTraffic};
pub use self_similar::SelfSimilarTraffic;

use noc_core::{Coord, Cycle, MeshConfig};
use rand::rngs::SmallRng;
use std::fmt;

/// A pollable packet source covering the whole mesh.
pub trait Traffic: fmt::Debug {
    /// Asks whether `node` creates a packet this `cycle`; returns its
    /// destination if so. Called exactly once per node per cycle, in a
    /// fixed node order, with the network's deterministic RNG.
    fn generate(&mut self, node: Coord, cycle: Cycle, rng: &mut SmallRng) -> Option<Coord>;

    /// Offered load in flits/node/cycle this generator was built for.
    fn offered_load(&self) -> f64;
}

/// The workload families available to experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TrafficKind {
    /// Uniform random destinations, Bernoulli injection.
    Uniform,
    /// Matrix-transpose permutation: `(x, y) → (y, x)`.
    Transpose,
    /// Self-similar web-like traffic: Pareto on/off bursts.
    SelfSimilar,
    /// MPEG-2-style GoP video streams between fixed pairs.
    Mpeg,
    /// Uniform with a fraction of packets redirected to a hotspot.
    Hotspot,
    /// Bit-complement permutation: `(x, y) → (W-1-x, H-1-y)`.
    BitComplement,
}

impl TrafficKind {
    /// All traffic kinds.
    pub const ALL: [TrafficKind; 6] = [
        TrafficKind::Uniform,
        TrafficKind::Transpose,
        TrafficKind::SelfSimilar,
        TrafficKind::Mpeg,
        TrafficKind::Hotspot,
        TrafficKind::BitComplement,
    ];
}

impl fmt::Display for TrafficKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficKind::Uniform => "uniform",
            TrafficKind::Transpose => "transpose",
            TrafficKind::SelfSimilar => "self-similar",
            TrafficKind::Mpeg => "mpeg",
            TrafficKind::Hotspot => "hotspot",
            TrafficKind::BitComplement => "bit-complement",
        };
        f.write_str(s)
    }
}

/// Builds a generator of `kind` over `mesh` offering `rate_flits`
/// flits/node/cycle with `flits_per_packet`-flit packets.
///
/// # Panics
///
/// Panics if `rate_flits` is not in `(0, 1]` or `flits_per_packet == 0`.
pub fn build_traffic(
    kind: TrafficKind,
    mesh: MeshConfig,
    rate_flits: f64,
    flits_per_packet: u16,
) -> Box<dyn Traffic> {
    assert!(rate_flits > 0.0 && rate_flits <= 1.0, "rate must be in (0, 1] flits/node/cycle");
    assert!(flits_per_packet > 0, "packets must contain at least one flit");
    match kind {
        TrafficKind::Uniform => Box::new(UniformTraffic::new(mesh, rate_flits, flits_per_packet)),
        TrafficKind::Transpose => {
            Box::new(TransposeTraffic::new(mesh, rate_flits, flits_per_packet))
        }
        TrafficKind::SelfSimilar => {
            Box::new(SelfSimilarTraffic::new(mesh, rate_flits, flits_per_packet))
        }
        TrafficKind::Mpeg => Box::new(MpegTraffic::new(mesh, rate_flits, flits_per_packet)),
        TrafficKind::Hotspot => {
            Box::new(HotspotTraffic::new(mesh, rate_flits, flits_per_packet, 0.2))
        }
        TrafficKind::BitComplement => {
            Box::new(BitComplementTraffic::new(mesh, rate_flits, flits_per_packet))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn factory_builds_every_kind() {
        let mesh = MeshConfig::new(4, 4);
        let mut rng = SmallRng::seed_from_u64(3);
        for kind in TrafficKind::ALL {
            let mut t = build_traffic(kind, mesh, 0.2, 4);
            assert!((t.offered_load() - 0.2).abs() < 1e-9, "{kind}");
            // Smoke: run a few thousand polls without panicking and with
            // in-mesh, non-self destinations.
            for cycle in 0..500 {
                for idx in 0..mesh.nodes() {
                    let node = Coord::from_index(idx, mesh.width);
                    if let Some(dst) = t.generate(node, cycle, &mut rng) {
                        assert!(dst.x < mesh.width && dst.y < mesh.height, "{kind}");
                        assert_ne!(dst, node, "{kind} generated a self-addressed packet");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn zero_rate_rejected() {
        let _ = build_traffic(TrafficKind::Uniform, MeshConfig::new(4, 4), 0.0, 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(TrafficKind::Uniform.to_string(), "uniform");
        assert_eq!(TrafficKind::SelfSimilar.to_string(), "self-similar");
    }
}
