//! Memoryless traffic patterns: uniform, transpose, hotspot and
//! bit-complement.

use crate::Traffic;
use noc_core::{Coord, Cycle, MeshConfig};
use rand::rngs::SmallRng;
use rand::Rng;

/// Bernoulli coin shared by the memoryless generators: converts a flit
/// rate into a per-cycle packet-generation probability.
fn packet_probability(rate_flits: f64, flits_per_packet: u16) -> f64 {
    rate_flits / flits_per_packet as f64
}

/// Uniform random traffic: each node flips a Bernoulli coin every cycle
/// and addresses a uniformly random *other* node.
#[derive(Debug, Clone)]
pub struct UniformTraffic {
    mesh: MeshConfig,
    rate_flits: f64,
    p: f64,
}

impl UniformTraffic {
    /// Creates the generator.
    pub fn new(mesh: MeshConfig, rate_flits: f64, flits_per_packet: u16) -> Self {
        UniformTraffic { mesh, rate_flits, p: packet_probability(rate_flits, flits_per_packet) }
    }
}

impl Traffic for UniformTraffic {
    fn generate(&mut self, node: Coord, _cycle: Cycle, rng: &mut SmallRng) -> Option<Coord> {
        if !rng.gen_bool(self.p) {
            return None;
        }
        // Uniform over the other N-1 nodes.
        let n = self.mesh.nodes();
        let mut idx = rng.gen_range(0..n - 1);
        if idx >= node.index(self.mesh.width) {
            idx += 1;
        }
        Some(Coord::from_index(idx, self.mesh.width))
    }

    fn offered_load(&self) -> f64 {
        self.rate_flits
    }
}

/// Matrix-transpose traffic: node `(x, y)` sends to `(y, x)`; diagonal
/// nodes stay silent. A classic adversarial pattern for XY routing [7].
#[derive(Debug, Clone)]
pub struct TransposeTraffic {
    mesh: MeshConfig,
    rate_flits: f64,
    p: f64,
}

impl TransposeTraffic {
    /// Creates the generator (the mesh should be square for the pattern
    /// to be a permutation, but rectangular meshes are clamped).
    pub fn new(mesh: MeshConfig, rate_flits: f64, flits_per_packet: u16) -> Self {
        TransposeTraffic { mesh, rate_flits, p: packet_probability(rate_flits, flits_per_packet) }
    }
}

impl Traffic for TransposeTraffic {
    fn generate(&mut self, node: Coord, _cycle: Cycle, rng: &mut SmallRng) -> Option<Coord> {
        // On a rectangular mesh the mirrored coordinate can fall
        // outside the grid; clamp it back so every generated packet has
        // a real destination (nodes whose mirror clamps onto themselves
        // go silent, like the diagonal).
        let dst = Coord::new(node.y.min(self.mesh.width - 1), node.x.min(self.mesh.height - 1));
        if dst == node || !rng.gen_bool(self.p) {
            return None;
        }
        Some(dst)
    }

    fn offered_load(&self) -> f64 {
        self.rate_flits
    }
}

/// Uniform traffic with a `hotspot_fraction` of packets redirected to a
/// single hotspot node at the mesh centre (extension workload).
#[derive(Debug, Clone)]
pub struct HotspotTraffic {
    uniform: UniformTraffic,
    hotspot: Coord,
    fraction: f64,
}

impl HotspotTraffic {
    /// Creates the generator; `fraction` of generated packets are
    /// re-addressed to the central hotspot.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn new(mesh: MeshConfig, rate_flits: f64, flits_per_packet: u16, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "hotspot fraction must be in [0, 1]");
        HotspotTraffic {
            uniform: UniformTraffic::new(mesh, rate_flits, flits_per_packet),
            hotspot: Coord::new(mesh.width / 2, mesh.height / 2),
            fraction,
        }
    }

    /// The hotspot node.
    pub fn hotspot(&self) -> Coord {
        self.hotspot
    }
}

impl Traffic for HotspotTraffic {
    fn generate(&mut self, node: Coord, cycle: Cycle, rng: &mut SmallRng) -> Option<Coord> {
        let dst = self.uniform.generate(node, cycle, rng)?;
        if node != self.hotspot && rng.gen_bool(self.fraction) {
            Some(self.hotspot)
        } else {
            Some(dst)
        }
    }

    fn offered_load(&self) -> f64 {
        self.uniform.offered_load()
    }
}

/// Bit-complement traffic: `(x, y)` sends to `(W-1-x, H-1-y)`
/// (extension workload; every packet crosses the mesh centre).
#[derive(Debug, Clone)]
pub struct BitComplementTraffic {
    mesh: MeshConfig,
    rate_flits: f64,
    p: f64,
}

impl BitComplementTraffic {
    /// Creates the generator.
    pub fn new(mesh: MeshConfig, rate_flits: f64, flits_per_packet: u16) -> Self {
        BitComplementTraffic {
            mesh,
            rate_flits,
            p: packet_probability(rate_flits, flits_per_packet),
        }
    }
}

impl Traffic for BitComplementTraffic {
    fn generate(&mut self, node: Coord, _cycle: Cycle, rng: &mut SmallRng) -> Option<Coord> {
        let dst = Coord::new(self.mesh.width - 1 - node.x, self.mesh.height - 1 - node.y);
        if dst == node || !rng.gen_bool(self.p) {
            return None;
        }
        Some(dst)
    }

    fn offered_load(&self) -> f64 {
        self.rate_flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mesh() -> MeshConfig {
        MeshConfig::new(8, 8)
    }

    #[test]
    fn uniform_rate_is_calibrated() {
        let mut t = UniformTraffic::new(mesh(), 0.4, 4);
        let mut rng = SmallRng::seed_from_u64(11);
        let cycles = 20_000u64;
        let node = Coord::new(3, 3);
        let packets = (0..cycles).filter(|&c| t.generate(node, c, &mut rng).is_some()).count();
        let measured_flits = packets as f64 * 4.0 / cycles as f64;
        assert!((measured_flits - 0.4).abs() < 0.02, "measured {measured_flits}");
    }

    #[test]
    fn uniform_destinations_cover_mesh() {
        let mut t = UniformTraffic::new(mesh(), 1.0, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let node = Coord::new(0, 0);
        let mut seen = std::collections::HashSet::new();
        for c in 0..5_000 {
            if let Some(d) = t.generate(node, c, &mut rng) {
                assert_ne!(d, node);
                seen.insert(d);
            }
        }
        assert_eq!(seen.len(), 63, "all other nodes should be hit");
    }

    #[test]
    fn transpose_targets_mirror() {
        let mut t = TransposeTraffic::new(mesh(), 1.0, 1);
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(t.generate(Coord::new(2, 5), 0, &mut rng), Some(Coord::new(5, 2)));
        // Diagonal nodes never send.
        for c in 0..100 {
            assert_eq!(t.generate(Coord::new(4, 4), c, &mut rng), None);
        }
    }

    #[test]
    fn transpose_clamps_on_rectangular_meshes() {
        // 4x3: node (3,1) mirrors to (1,3), whose y falls off the
        // 3-row grid — it must clamp back onto a real node.
        let mut t = TransposeTraffic::new(MeshConfig::new(4, 3), 1.0, 1);
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(t.generate(Coord::new(3, 1), 0, &mut rng), Some(Coord::new(1, 2)));
        // A node whose mirror clamps onto itself goes silent.
        for c in 0..100 {
            assert_eq!(t.generate(Coord::new(2, 2), c, &mut rng), None);
        }
    }

    #[test]
    fn hotspot_skews_towards_center() {
        let mut t = HotspotTraffic::new(mesh(), 1.0, 1, 0.5);
        let mut rng = SmallRng::seed_from_u64(9);
        let hotspot = t.hotspot();
        let node = Coord::new(0, 0);
        let hits = (0..4_000).filter(|&c| t.generate(node, c, &mut rng) == Some(hotspot)).count();
        // ~50% redirected + ~1/63 natural.
        assert!(hits > 1_500, "hotspot hits {hits} too low");
    }

    #[test]
    fn bit_complement_targets() {
        let mut t = BitComplementTraffic::new(mesh(), 1.0, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(t.generate(Coord::new(1, 2), 0, &mut rng), Some(Coord::new(6, 5)));
    }

    #[test]
    #[should_panic(expected = "hotspot fraction")]
    fn invalid_hotspot_fraction() {
        let _ = HotspotTraffic::new(mesh(), 0.1, 4, 1.5);
    }
}
