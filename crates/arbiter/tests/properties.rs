//! Property-based tests for the arbiter crate.

use noc_arbiter::{
    max_matching_2x2, MirrorAllocator, RoundRobinArbiter, SeparableAllocator, SwitchRequest,
};
use proptest::prelude::*;

proptest! {
    /// A round-robin grant always points at an asserted request line.
    #[test]
    fn rr_grant_subset_of_requests(
        n in 1usize..12,
        rounds in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 12), 1..50),
    ) {
        let mut arb = RoundRobinArbiter::new(n);
        for round in rounds {
            let requests = &round[..n];
            match arb.arbitrate(requests) {
                Some(g) => prop_assert!(requests[g]),
                None => prop_assert!(requests.iter().all(|&r| !r)),
            }
        }
    }

    /// Under any request sequence in which line `i` is always asserted,
    /// line `i` is granted at least once every `n` arbitrations.
    #[test]
    fn rr_no_starvation(
        n in 2usize..10,
        persistent in 0usize..10,
        noise in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 10), 30),
    ) {
        let persistent = persistent % n;
        let mut arb = RoundRobinArbiter::new(n);
        let mut dry = 0usize;
        for round in noise {
            let mut requests: Vec<bool> = round[..n].to_vec();
            requests[persistent] = true;
            let g = arb.arbitrate(&requests).expect("a request is always asserted");
            if g == persistent {
                dry = 0;
            } else {
                dry += 1;
                prop_assert!(dry < n, "persistent requester starved for {dry} rounds");
            }
        }
    }

    /// The mirror allocator always produces a maximal matching, from any
    /// internal arbiter state.
    #[test]
    fn mirror_always_maximal(
        warmup in proptest::collection::vec(0u8..16, 0..8),
        pattern in 0u8..16,
    ) {
        let decode = |bits: u8| {
            [
                [bits & 1 != 0, bits & 2 != 0],
                [bits & 4 != 0, bits & 8 != 0],
            ]
        };
        let mut alloc = MirrorAllocator::new();
        for w in warmup {
            let _ = alloc.allocate(decode(w));
        }
        let p = decode(pattern);
        let g = alloc.allocate(p);
        prop_assert_eq!(g.matches(), max_matching_2x2(p));
        if let Some(d) = g.port0 { prop_assert!(p[0][d]); }
        if let Some(d) = g.port1 { prop_assert!(p[1][d]); }
        if let (Some(a), Some(b)) = (g.port0, g.port1) { prop_assert_ne!(a, b); }
    }

    /// Separable allocation never grants conflicting connections and
    /// only grants requested ones.
    #[test]
    fn separable_grants_valid(
        inputs in 1usize..6,
        outputs in 1usize..6,
        vcs in 1usize..4,
        raw in proptest::collection::vec((0usize..6, 0usize..6, 0usize..4), 0..20),
    ) {
        let mut alloc = SeparableAllocator::new(inputs, outputs, vcs);
        let requests: Vec<SwitchRequest> = raw
            .into_iter()
            .map(|(i, o, v)| SwitchRequest { input: i % inputs, output: o % outputs, vc: v % vcs })
            .collect();
        let (grants, _) = alloc.allocate(&requests);
        let mut in_seen = std::collections::HashSet::new();
        let mut out_seen = std::collections::HashSet::new();
        for g in &grants {
            prop_assert!(in_seen.insert(g.input), "input granted twice");
            prop_assert!(out_seen.insert(g.output), "output granted twice");
            prop_assert!(requests
                .iter()
                .any(|r| r.input == g.input && r.output == g.output && r.vc == g.vc));
        }
        // If there was any request, at least one grant must be issued
        // (the allocator is work-conserving at the request level).
        if !requests.is_empty() {
            prop_assert!(!grants.is_empty());
        }
    }
}
