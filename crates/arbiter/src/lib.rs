//! # noc-arbiter
//!
//! Arbiters and switch allocators for the RoCo reproduction:
//!
//! * [`RoundRobinArbiter`] — rotating-priority `v:1` arbiter, the basic
//!   cell of every VA/SA unit in the paper's Fig 2 and Fig 4.
//! * [`MatrixArbiter`] — least-recently-served arbiter for contended
//!   output ports.
//! * [`SeparableAllocator`] — classic input-first two-stage switch
//!   allocator (generic router, Path-Sensitive router).
//! * [`MirrorAllocator`] — the paper's Mirroring-Effect allocator
//!   (§3.3), guaranteeing maximal matching on each RoCo 2×2 module.
//!
//! # Examples
//!
//! ```
//! use noc_arbiter::{MirrorAllocator, max_matching_2x2};
//!
//! let mut mirror = MirrorAllocator::new();
//! let pattern = [[true, true], [true, false]];
//! let grant = mirror.allocate(pattern);
//! assert_eq!(grant.matches(), max_matching_2x2(pattern));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod matrix;
mod mirror;
mod rr;
mod separable;

pub use matrix::MatrixArbiter;
pub use mirror::{max_matching_2x2, MirrorAllocator, MirrorGrant};
pub use rr::RoundRobinArbiter;
pub use separable::{AllocationEffort, SeparableAllocator, SwitchGrant, SwitchRequest};
