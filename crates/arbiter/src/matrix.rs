//! Least-recently-served matrix arbitration.

/// A matrix arbiter: maintains a pairwise priority matrix and grants the
/// requester that beats every other asserted requester, then demotes the
/// winner below everyone else (least-recently-served order).
///
/// Matrix arbiters give better short-term fairness than rotating
/// priority under bursty request patterns; we use them for the generic
/// router's second-stage (output) switch arbiters where the paper's
/// "multiple iterative arbitrations" pressure is highest.
///
/// # Examples
///
/// ```
/// use noc_arbiter::MatrixArbiter;
/// let mut arb = MatrixArbiter::new(3);
/// let first = arb.arbitrate(&[true, true, true]).unwrap();
/// let second = arb.arbitrate(&[true, true, true]).unwrap();
/// assert_ne!(first, second, "winner is demoted below all others");
/// ```
#[derive(Debug, Clone)]
pub struct MatrixArbiter {
    n: usize,
    /// `prio[i * n + j]` is `true` when requester `i` outranks `j`.
    prio: Vec<bool>,
}

impl MatrixArbiter {
    /// Creates an arbiter over `n` requesters with initial priority
    /// `0 > 1 > … > n-1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "an arbiter needs at least one requester");
        let mut prio = vec![false; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                prio[i * n + j] = true;
            }
        }
        MatrixArbiter { n, prio }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `false`; an arbiter always has at least one requester line.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grants the highest-priority asserted requester and demotes it.
    /// Returns `None` when no line is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter width.
    pub fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        let winner = (0..self.n).find(|&i| {
            requests[i] && (0..self.n).all(|j| j == i || !requests[j] || self.prio[i * self.n + j])
        })?;
        for j in 0..self.n {
            if j != winner {
                self.prio[winner * self.n + j] = false;
                self.prio[j * self.n + winner] = true;
            }
        }
        Some(winner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_priority_order() {
        let mut arb = MatrixArbiter::new(4);
        assert_eq!(arb.arbitrate(&[false, true, true, false]), Some(1));
    }

    #[test]
    fn winner_is_demoted() {
        let mut arb = MatrixArbiter::new(3);
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(0));
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(1));
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(2));
        assert_eq!(arb.arbitrate(&[true, true, true]), Some(0));
    }

    #[test]
    fn least_recently_served_property() {
        let mut arb = MatrixArbiter::new(3);
        // Serve 0 twice; 1 and 2 now both outrank 0.
        assert_eq!(arb.arbitrate(&[true, false, false]), Some(0));
        assert_eq!(arb.arbitrate(&[true, false, false]), Some(0));
        assert_eq!(arb.arbitrate(&[true, true, false]), Some(1));
        assert_eq!(arb.arbitrate(&[true, false, true]), Some(2));
    }

    #[test]
    fn no_request_no_grant() {
        let mut arb = MatrixArbiter::new(2);
        assert_eq!(arb.arbitrate(&[false, false]), None);
    }

    #[test]
    fn single_requester_always_wins() {
        let mut arb = MatrixArbiter::new(5);
        for _ in 0..10 {
            assert_eq!(arb.arbitrate(&[false, false, false, true, false]), Some(3));
        }
    }

    #[test]
    fn total_order_is_maintained() {
        // There is always exactly one grantable requester among any
        // non-empty request set (the matrix stays a strict total order).
        let mut arb = MatrixArbiter::new(4);
        let patterns: [[bool; 4]; 6] = [
            [true, true, false, false],
            [true, true, true, true],
            [false, true, true, false],
            [true, false, false, true],
            [false, false, true, true],
            [true, true, true, false],
        ];
        for p in patterns.iter().cycle().take(60) {
            assert!(arb.arbitrate(p).is_some());
        }
    }
}
