//! The Mirroring-Effect switch allocator (§3.3 of the paper).
//!
//! Each RoCo module owns a 2×2 crossbar: two input ports, two output
//! directions. The Mirror allocator performs global arbitration *once*,
//! at port 1, and grants port 2 the mirrored (opposite) direction —
//! using state information from both ports so that the result is always
//! a **maximal matching** between inputs and outputs.

use crate::rr::RoundRobinArbiter;

/// Grant produced by the mirror allocator for one module in one cycle:
/// for each input port, the output slot (0 or 1) it may drive, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MirrorGrant {
    /// Output slot granted to input port 0.
    pub port0: Option<usize>,
    /// Output slot granted to input port 1.
    pub port1: Option<usize>,
}

impl MirrorGrant {
    /// Number of grants issued (0, 1 or 2).
    pub fn matches(&self) -> usize {
        self.port0.is_some() as usize + self.port1.is_some() as usize
    }
}

/// The Mirror allocator for one 2×2 module.
///
/// `requests[p][d]` states whether input port `p` holds at least one flit
/// (its per-direction local arbitration winner) wanting output slot `d`.
///
/// # Examples
///
/// ```
/// use noc_arbiter::MirrorAllocator;
/// let mut alloc = MirrorAllocator::new();
/// // Port 0 wants East (slot 0); port 1 wants West (slot 1): both win.
/// let g = alloc.allocate([[true, false], [false, true]]);
/// assert_eq!(g.port0, Some(0));
/// assert_eq!(g.port1, Some(1));
/// assert_eq!(g.matches(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MirrorAllocator {
    /// The single 2:1 global arbiter of Fig 4 (port 1's direction choice;
    /// port 2 needs none thanks to the Mirroring Effect).
    global: RoundRobinArbiter,
}

impl MirrorAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        MirrorAllocator { global: RoundRobinArbiter::new(2) }
    }

    /// Performs one cycle of mirrored switch allocation.
    ///
    /// The decision logic follows Fig 4: port 0's winning direction is
    /// decided by the 2:1 global arbiter; port 1 is granted the opposite
    /// direction. State from port 1 feeds the global decision so that a
    /// choice that would strand a servable port-1 flit is avoided —
    /// yielding a maximal matching in every case.
    pub fn allocate(&mut self, requests: [[bool; 2]; 2]) -> MirrorGrant {
        let [p0, p1] = requests;
        let p0_dir = match (p0[0], p0[1]) {
            (false, false) => None,
            (true, false) => Some(0),
            (false, true) => Some(1),
            (true, true) => {
                // Port 0 could take either output. Maximal matching: take
                // the one port 1 does NOT need; if port 1 needs both or
                // neither, fall back to the rotating global arbiter.
                match (p1[0], p1[1]) {
                    (true, false) => Some(1),
                    (false, true) => Some(0),
                    _ => self.global.arbitrate(&[true, true]),
                }
            }
        };
        let p1_dir = match p0_dir {
            // The Mirroring Effect: port 1 gets the opposite direction.
            Some(d) => {
                let mirror = 1 - d;
                p1[mirror].then_some(mirror)
            }
            // Port 0 idle: port 1 may take any requested direction.
            None => match (p1[0], p1[1]) {
                (false, false) => None,
                (true, false) => Some(0),
                (false, true) => Some(1),
                (true, true) => self.global.arbitrate(&[true, true]),
            },
        };
        MirrorGrant { port0: p0_dir, port1: p1_dir }
    }
}

impl Default for MirrorAllocator {
    fn default() -> Self {
        Self::new()
    }
}

/// Counts the maximum matching size achievable for a 2×2 request
/// pattern; used to verify the allocator's maximal-matching guarantee.
pub fn max_matching_2x2(requests: [[bool; 2]; 2]) -> usize {
    let mut best = 0;
    // Enumerate the nine possible assignments (each port: none/slot0/slot1).
    for a0 in [None, Some(0), Some(1)] {
        for a1 in [None, Some(0), Some(1)] {
            let valid0 = a0.map_or(true, |d: usize| requests[0][d]);
            let valid1 = a1.map_or(true, |d: usize| requests[1][d]);
            let disjoint = a0.is_none() || a1.is_none() || a0 != a1;
            if valid0 && valid1 && disjoint {
                best = best.max(a0.is_some() as usize + a1.is_some() as usize);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_patterns() -> impl Iterator<Item = [[bool; 2]; 2]> {
        (0u8..16).map(|bits| [[bits & 1 != 0, bits & 2 != 0], [bits & 4 != 0, bits & 8 != 0]])
    }

    #[test]
    fn always_maximal_matching() {
        let mut alloc = MirrorAllocator::new();
        for pattern in all_patterns() {
            // Run each pattern several times so both global-arbiter
            // states are exercised.
            for _ in 0..3 {
                let g = alloc.allocate(pattern);
                assert_eq!(
                    g.matches(),
                    max_matching_2x2(pattern),
                    "pattern {pattern:?} produced non-maximal grant {g:?}"
                );
            }
        }
    }

    #[test]
    fn grants_are_conflict_free_and_backed_by_requests() {
        let mut alloc = MirrorAllocator::new();
        for pattern in all_patterns() {
            let g = alloc.allocate(pattern);
            if let Some(d) = g.port0 {
                assert!(pattern[0][d]);
            }
            if let Some(d) = g.port1 {
                assert!(pattern[1][d]);
            }
            if let (Some(a), Some(b)) = (g.port0, g.port1) {
                assert_ne!(a, b, "two ports granted the same output");
            }
        }
    }

    #[test]
    fn conflicting_single_direction_grants_port0() {
        let mut alloc = MirrorAllocator::new();
        // Both ports want only slot 0: global arbitration happens at
        // port 0's side, so port 0 wins and port 1 is blocked.
        let g = alloc.allocate([[true, false], [true, false]]);
        assert_eq!(g.port0, Some(0));
        assert_eq!(g.port1, None);
    }

    #[test]
    fn both_want_both_alternates_via_global_arbiter() {
        let mut alloc = MirrorAllocator::new();
        let g1 = alloc.allocate([[true, true], [true, true]]);
        let g2 = alloc.allocate([[true, true], [true, true]]);
        assert_eq!(g1.matches(), 2);
        assert_eq!(g2.matches(), 2);
        assert_ne!(g1.port0, g2.port0, "rotating priority alternates the choice");
    }

    #[test]
    fn idle_port0_frees_port1() {
        let mut alloc = MirrorAllocator::new();
        let g = alloc.allocate([[false, false], [true, false]]);
        assert_eq!(g.port0, None);
        assert_eq!(g.port1, Some(0));
    }

    #[test]
    fn mirroring_effect_assigns_opposite_direction() {
        let mut alloc = MirrorAllocator::new();
        // Port 0 wants slot 0 only; port 1 wants both. Port 1 must be
        // granted the mirrored slot 1.
        let g = alloc.allocate([[true, false], [true, true]]);
        assert_eq!(g.port0, Some(0));
        assert_eq!(g.port1, Some(1));
    }

    #[test]
    fn max_matching_reference_values() {
        assert_eq!(max_matching_2x2([[false, false], [false, false]]), 0);
        assert_eq!(max_matching_2x2([[true, false], [true, false]]), 1);
        assert_eq!(max_matching_2x2([[true, true], [true, true]]), 2);
        assert_eq!(max_matching_2x2([[true, false], [false, true]]), 2);
    }
}
