//! Round-robin arbitration.

/// A rotating-priority (round-robin) arbiter over a fixed number of
/// requesters, the building block of the paper's VA and SA units.
///
/// The arbiter grants the first requester strictly after the previous
/// winner in circular order, which guarantees strong fairness: a
/// persistent requester is served within `n` arbitrations.
///
/// # Examples
///
/// ```
/// use noc_arbiter::RoundRobinArbiter;
/// let mut arb = RoundRobinArbiter::new(3);
/// assert_eq!(arb.arbitrate(&[true, true, false]), Some(0));
/// // Requester 0 just won, so 1 now has priority.
/// assert_eq!(arb.arbitrate(&[true, true, false]), Some(1));
/// assert_eq!(arb.arbitrate(&[false, false, false]), None);
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    n: usize,
    /// Index of the most recent winner; the search starts after it.
    last: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "an arbiter needs at least one requester");
        RoundRobinArbiter { n, last: n - 1 }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `false`; an arbiter always has at least one requester line.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Grants one of the asserted `requests`, rotating priority past the
    /// winner. Returns `None` when no line is asserted.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the arbiter width.
    pub fn arbitrate(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        let winner = self.peek(requests)?;
        self.last = winner;
        Some(winner)
    }

    /// Like [`RoundRobinArbiter::arbitrate`] but without updating the
    /// priority state (used for speculative decisions that may be
    /// squashed).
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector width mismatch");
        (1..=self.n).map(|off| (self.last + off) % self.n).find(|&i| requests[i])
    }

    /// Commits `winner` as the most recent grant (pairs with
    /// [`RoundRobinArbiter::peek`]).
    ///
    /// # Panics
    ///
    /// Panics if `winner` is out of range.
    pub fn commit(&mut self, winner: usize) {
        assert!(winner < self.n, "winner out of range");
        self.last = winner;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_only_requesters() {
        let mut arb = RoundRobinArbiter::new(4);
        for _ in 0..16 {
            let g = arb.arbitrate(&[false, true, false, true]).unwrap();
            assert!(g == 1 || g == 3);
        }
    }

    #[test]
    fn rotates_among_persistent_requesters() {
        let mut arb = RoundRobinArbiter::new(3);
        let seq: Vec<_> = (0..6).map(|_| arb.arbitrate(&[true, true, true]).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn no_request_no_grant() {
        let mut arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.arbitrate(&[false, false]), None);
    }

    #[test]
    fn peek_does_not_advance() {
        let arb = RoundRobinArbiter::new(3);
        assert_eq!(arb.peek(&[true, true, true]), Some(0));
        assert_eq!(arb.peek(&[true, true, true]), Some(0));
    }

    #[test]
    fn commit_sets_priority() {
        let mut arb = RoundRobinArbiter::new(3);
        arb.commit(0);
        assert_eq!(arb.peek(&[true, true, true]), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one requester")]
    fn zero_width_panics() {
        let _ = RoundRobinArbiter::new(0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut arb = RoundRobinArbiter::new(2);
        let _ = arb.arbitrate(&[true]);
    }

    #[test]
    fn fairness_bound() {
        // A persistent requester is served within n arbitrations even
        // under full load.
        let n = 8;
        let mut arb = RoundRobinArbiter::new(n);
        let all = vec![true; n];
        let mut since_served = vec![0usize; n];
        for _ in 0..100 {
            let g = arb.arbitrate(&all).unwrap();
            for (i, s) in since_served.iter_mut().enumerate() {
                if i == g {
                    *s = 0;
                } else {
                    *s += 1;
                    assert!(*s < n, "requester {i} starved");
                }
            }
        }
    }
}
