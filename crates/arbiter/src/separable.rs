//! Separable (input-first) two-stage switch allocation, used by the
//! generic router's monolithic SA and by the Path-Sensitive router's
//! decomposed crossbar.

use crate::rr::RoundRobinArbiter;

/// One virtual channel's bid for crossbar passage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchRequest {
    /// Crossbar input port index.
    pub input: usize,
    /// Requested crossbar output port index.
    pub output: usize,
    /// VC index within the input port (round-robined by stage 1).
    pub vc: usize,
}

/// A granted crossbar connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchGrant {
    /// Winning input port.
    pub input: usize,
    /// Granted output port.
    pub output: usize,
    /// Winning VC within the input port.
    pub vc: usize,
}

/// Arbitration-effort statistics for one allocation pass (consumed by
/// the energy model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocationEffort {
    /// Stage-1 (per input port) arbitration operations performed.
    pub local_ops: u64,
    /// Stage-2 (per output port) arbitration operations performed.
    pub global_ops: u64,
}

/// Input-first separable allocator: stage 1 picks one VC per input port
/// (a `v:1` arbiter per port), stage 2 picks one input per output port
/// (a `P:1` arbiter per output). The classic design the paper's Fig 2
/// critiques for its arbitration depth.
#[derive(Debug, Clone)]
pub struct SeparableAllocator {
    input_arbs: Vec<RoundRobinArbiter>,
    output_arbs: Vec<RoundRobinArbiter>,
    vcs_per_input: usize,
    /// Reusable stage-1 winner scratch (one slot per input port).
    stage1: Vec<Option<SwitchRequest>>,
    /// Reusable request-line scratch for both arbitration stages.
    lines: Vec<bool>,
}

impl SeparableAllocator {
    /// Creates an allocator for `inputs` ports of `vcs_per_input` VCs
    /// each, switching onto `outputs` ports.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(inputs: usize, outputs: usize, vcs_per_input: usize) -> Self {
        assert!(
            inputs > 0 && outputs > 0 && vcs_per_input > 0,
            "allocator dimensions must be non-zero"
        );
        SeparableAllocator {
            input_arbs: (0..inputs).map(|_| RoundRobinArbiter::new(vcs_per_input)).collect(),
            output_arbs: (0..outputs).map(|_| RoundRobinArbiter::new(inputs)).collect(),
            vcs_per_input,
            stage1: vec![None; inputs],
            lines: Vec::with_capacity(vcs_per_input.max(inputs)),
        }
    }

    /// Number of crossbar input ports.
    pub fn inputs(&self) -> usize {
        self.input_arbs.len()
    }

    /// Number of crossbar output ports.
    pub fn outputs(&self) -> usize {
        self.output_arbs.len()
    }

    /// Performs one allocation pass over `requests`, returning the
    /// conflict-free grant set and the arbitration effort expended.
    ///
    /// Convenience wrapper over [`SeparableAllocator::allocate_into`]
    /// that allocates a fresh grant vector; the simulator's hot loop
    /// uses `allocate_into` with a reusable buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if a request indexes outside the allocator's dimensions.
    pub fn allocate(&mut self, requests: &[SwitchRequest]) -> (Vec<SwitchGrant>, AllocationEffort) {
        let mut grants = Vec::new();
        let effort = self.allocate_into(requests, &mut grants);
        (grants, effort)
    }

    /// Performs one allocation pass over `requests`, writing the
    /// conflict-free grant set into the caller-owned `grants` buffer
    /// (cleared on entry) and returning the arbitration effort. Uses
    /// internal scratch instead of per-call allocations.
    ///
    /// # Panics
    ///
    /// Panics if a request indexes outside the allocator's dimensions.
    pub fn allocate_into(
        &mut self,
        requests: &[SwitchRequest],
        grants: &mut Vec<SwitchGrant>,
    ) -> AllocationEffort {
        grants.clear();
        let mut effort = AllocationEffort::default();
        if requests.is_empty() {
            return effort;
        }
        // Stage 1: per input port, round-robin over requesting VCs.
        let mut stage1 = std::mem::take(&mut self.stage1);
        let mut lines = std::mem::take(&mut self.lines);
        stage1.clear();
        stage1.resize(self.input_arbs.len(), None);
        for (input, arb) in self.input_arbs.iter_mut().enumerate() {
            lines.clear();
            lines.resize(self.vcs_per_input, false);
            let mut any = false;
            for r in requests.iter().filter(|r| r.input == input) {
                assert!(r.vc < self.vcs_per_input, "vc index out of range");
                assert!(r.output < self.output_arbs.len(), "output index out of range");
                lines[r.vc] = true;
                any = true;
            }
            if any {
                effort.local_ops += 1;
                if let Some(vc) = arb.arbitrate(&lines) {
                    stage1[input] =
                        requests.iter().find(|r| r.input == input && r.vc == vc).copied();
                }
            }
        }
        // Stage 2: per output port, round-robin over stage-1 winners.
        for (output, arb) in self.output_arbs.iter_mut().enumerate() {
            lines.clear();
            lines.extend(
                (0..self.input_arbs.len()).map(|i| stage1[i].is_some_and(|r| r.output == output)),
            );
            if lines.iter().any(|&l| l) {
                effort.global_ops += 1;
                if let Some(input) = arb.arbitrate(&lines) {
                    let r = stage1[input].expect("stage-1 winner exists");
                    grants.push(SwitchGrant { input, output, vc: r.vc });
                }
            }
        }
        self.stage1 = stage1;
        self.lines = lines;
        effort
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(input: usize, output: usize, vc: usize) -> SwitchRequest {
        SwitchRequest { input, output, vc }
    }

    #[test]
    fn grants_are_conflict_free() {
        let mut alloc = SeparableAllocator::new(5, 5, 3);
        let requests = vec![
            req(0, 2, 0),
            req(0, 2, 1),
            req(1, 2, 0),
            req(2, 3, 2),
            req(3, 3, 0),
            req(4, 0, 1),
        ];
        let (grants, effort) = alloc.allocate(&requests);
        // One grant max per input and per output.
        let mut inputs_seen = std::collections::HashSet::new();
        let mut outputs_seen = std::collections::HashSet::new();
        for g in &grants {
            assert!(inputs_seen.insert(g.input));
            assert!(outputs_seen.insert(g.output));
            assert!(requests.contains(&req(g.input, g.output, g.vc)));
        }
        assert!(effort.local_ops >= grants.len() as u64);
        assert!(effort.global_ops >= grants.len() as u64);
    }

    #[test]
    fn single_request_is_granted() {
        let mut alloc = SeparableAllocator::new(2, 2, 2);
        let (grants, _) = alloc.allocate(&[req(1, 0, 1)]);
        assert_eq!(grants, vec![SwitchGrant { input: 1, output: 0, vc: 1 }]);
    }

    #[test]
    fn empty_request_set() {
        let mut alloc = SeparableAllocator::new(2, 2, 2);
        let (grants, effort) = alloc.allocate(&[]);
        assert!(grants.is_empty());
        assert_eq!(effort, AllocationEffort::default());
    }

    #[test]
    fn head_of_line_blocking_is_possible() {
        // Input 0's stage-1 winner may ask for a contested output while
        // its other VC wanted a free one — the inefficiency the Mirroring
        // Effect avoids. Verify the allocator models it: with inputs 0
        // and 1 both preferring output 0, at most one wins output 0 and
        // output 1 can go idle even though a request for it existed.
        let mut alloc = SeparableAllocator::new(2, 2, 2);
        let requests = vec![req(0, 0, 0), req(0, 1, 1), req(1, 0, 0)];
        let mut idle_output1 = 0;
        for _ in 0..10 {
            let (grants, _) = alloc.allocate(&requests);
            if !grants.iter().any(|g| g.output == 1) {
                idle_output1 += 1;
            }
        }
        assert!(idle_output1 > 0, "expected occasional HoL blocking of output 1");
    }

    #[test]
    fn rotates_between_competing_inputs() {
        let mut alloc = SeparableAllocator::new(2, 1, 1);
        let requests = vec![req(0, 0, 0), req(1, 0, 0)];
        let winners: Vec<usize> = (0..4).map(|_| alloc.allocate(&requests).0[0].input).collect();
        assert_eq!(winners, vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "dimensions must be non-zero")]
    fn zero_dimension_panics() {
        let _ = SeparableAllocator::new(0, 1, 1);
    }
}
