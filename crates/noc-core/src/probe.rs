//! Pipeline probe types: per-VC state snapshots routers expose for
//! telemetry and stall post-mortems.
//!
//! Every router model can describe the instantaneous state of each of
//! its input virtual channels as a [`VcSnapshot`]. The simulator's
//! interval sampler and the stall post-mortem both consume these to
//! answer "where is every flit right now, and what is it waiting for?"
//! without reaching into router internals.

use crate::flit::{Cycle, PacketId};
use crate::geometry::Direction;
use serde::{Deserialize, Serialize};

/// The pipeline phase an input VC is in, abstracted over the three
/// router microarchitectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcPhase {
    /// No packet occupies the VC.
    Idle,
    /// A head flit is waiting for (or completing) route computation.
    Routing,
    /// The head holds a route but has not yet won a downstream VC.
    WaitingVa,
    /// A fault made the route unserviceable; the packet is wedged until
    /// the watchdog fires (baseline blocking behaviour).
    Blocked,
    /// The VC owns a downstream VC and competes for switch traversal.
    Active,
}

impl VcPhase {
    /// Short lower-case label used in post-mortem and timeline output.
    pub fn label(self) -> &'static str {
        match self {
            VcPhase::Idle => "idle",
            VcPhase::Routing => "routing",
            VcPhase::WaitingVa => "waiting-va",
            VcPhase::Blocked => "blocked",
            VcPhase::Active => "active",
        }
    }
}

/// A point-in-time description of one input virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcSnapshot {
    /// The input side the VC sits on (`Local` for injection VCs).
    pub input_side: Direction,
    /// The VC's index on that input link.
    pub link_index: u8,
    /// Flits currently buffered in the VC.
    pub buffered: usize,
    /// The packet whose flit is at the head of the buffer, if any.
    pub head_packet: Option<PacketId>,
    /// Current pipeline phase.
    pub phase: VcPhase,
    /// The output direction the VC is (or wants to be) routed towards,
    /// when known.
    pub out: Option<Direction>,
    /// The downstream VC held by an `Active` channel
    /// ([`crate::node::EJECT_VC`] denotes ejection).
    pub downstream_vc: Option<u8>,
    /// `true` when the VC is `Active` with flits to send but its
    /// downstream VC has zero credits — the credit-starvation signal.
    pub credit_starved: bool,
    /// The cycle a `Blocked` VC wedged at.
    pub blocked_since: Option<Cycle>,
    /// Whether the VC is discarding the remainder of a dropped packet.
    pub dropping: bool,
    /// Whether a fault disabled the VC.
    pub disabled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_are_distinct() {
        let phases = [
            VcPhase::Idle,
            VcPhase::Routing,
            VcPhase::WaitingVa,
            VcPhase::Blocked,
            VcPhase::Active,
        ];
        for (i, a) in phases.iter().enumerate() {
            for b in &phases[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
