//! Pipeline probe types: per-VC state snapshots routers expose for
//! telemetry and stall post-mortems.
//!
//! Every router model can describe the instantaneous state of each of
//! its input virtual channels as a [`VcSnapshot`]. The simulator's
//! interval sampler and the stall post-mortem both consume these to
//! answer "where is every flit right now, and what is it waiting for?"
//! without reaching into router internals.

use crate::flit::{Cycle, PacketId};
use crate::geometry::{Coord, Direction};
use serde::{Deserialize, Serialize};

/// The pipeline phase an input VC is in, abstracted over the three
/// router microarchitectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcPhase {
    /// No packet occupies the VC.
    Idle,
    /// A head flit is waiting for (or completing) route computation.
    Routing,
    /// The head holds a route but has not yet won a downstream VC.
    WaitingVa,
    /// A fault made the route unserviceable; the packet is wedged until
    /// the watchdog fires (baseline blocking behaviour).
    Blocked,
    /// The VC owns a downstream VC and competes for switch traversal.
    Active,
}

impl VcPhase {
    /// Short lower-case label used in post-mortem and timeline output.
    pub fn label(self) -> &'static str {
        match self {
            VcPhase::Idle => "idle",
            VcPhase::Routing => "routing",
            VcPhase::WaitingVa => "waiting-va",
            VcPhase::Blocked => "blocked",
            VcPhase::Active => "active",
        }
    }
}

/// A point-in-time description of one input virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcSnapshot {
    /// The input side the VC sits on (`Local` for injection VCs).
    pub input_side: Direction,
    /// The VC's index on that input link.
    pub link_index: u8,
    /// Flits currently buffered in the VC.
    pub buffered: usize,
    /// The packet whose flit is at the head of the buffer, if any.
    pub head_packet: Option<PacketId>,
    /// Destination of the head flit, if any — lets diagnostics relate
    /// the wedged stream to the reachability of where it was going.
    #[serde(default)]
    pub head_dst: Option<Coord>,
    /// Current pipeline phase.
    pub phase: VcPhase,
    /// The output direction the VC is (or wants to be) routed towards,
    /// when known.
    pub out: Option<Direction>,
    /// The downstream VC held by an `Active` channel
    /// ([`crate::node::EJECT_VC`] denotes ejection).
    pub downstream_vc: Option<u8>,
    /// `true` when the VC is `Active` with flits to send but its
    /// downstream VC has zero credits — the credit-starvation signal.
    pub credit_starved: bool,
    /// The cycle a `Blocked` VC wedged at.
    pub blocked_since: Option<Cycle>,
    /// Whether the VC is discarding the remainder of a dropped packet.
    pub dropping: bool,
    /// Whether a fault disabled the VC.
    pub disabled: bool,
}

/// Audit-grade snapshot of one input virtual channel: everything the
/// runtime invariant checker needs that [`VcSnapshot`] does not carry
/// (capacities, poison counts, the dropping latch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcAudit {
    /// The input side the VC sits on (`Local` for injection VCs).
    pub input_side: Direction,
    /// The VC's index on that input link (its credit id).
    pub link_index: u8,
    /// Flits currently buffered.
    pub queue_len: usize,
    /// Buffered poison tails (emergency control flits that may
    /// transiently exceed the credited capacity).
    pub poison_queued: usize,
    /// Whether the flit at the front of the buffer is a head flit.
    pub head_is_head_kind: Option<bool>,
    /// Current (possibly fault-reduced) buffer capacity.
    pub capacity: u8,
    /// The fault-free capacity the VC was built with.
    pub nominal_capacity: u8,
    /// Taken out of service by a buffer fault.
    pub disabled: bool,
    /// Discarding the remainder of a dropped packet.
    pub dropping: bool,
    /// Current pipeline phase.
    pub phase: VcPhase,
    /// Output direction held by an `Active` stream.
    pub active_out: Option<Direction>,
    /// Downstream VC held by an `Active` stream
    /// ([`crate::node::EJECT_VC`] denotes ejection).
    pub active_dvc: Option<u8>,
}

/// The sender-side credit book for one downstream input VC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreditBook {
    /// Free downstream slots this router believes it may still use.
    pub credits: u8,
    /// The downstream VC's capacity as last published (§4.1 handshake).
    pub capacity: u8,
    /// Whether the downstream VC is free for allocation to a new packet.
    pub free: bool,
}

/// One flit sitting in the switch-traversal latch, awaiting emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatchedFlit {
    /// Output direction the flit leaves through.
    pub out: Direction,
    /// Downstream VC index (or [`crate::node::EJECT_VC`]).
    pub dvc: u8,
    /// Raw packet id (`u64::MAX` for sentinel poison tails).
    pub packet: u64,
    /// Whether the flit is a tail (closes its wormhole).
    pub is_tail: bool,
    /// Whether the flit is a poison tail (§4.1 abort marker).
    pub poison: bool,
}

/// A complete audit snapshot of one router, consumed by the simulator's
/// invariant checker ([`crate::node::RouterNode::audit_probe`]). Built
/// only when auditing is enabled; the hot path never allocates it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditProbe {
    /// Every input VC's audit state.
    pub vcs: Vec<VcAudit>,
    /// Credit books per mesh output (indexed by
    /// [`Direction::index`]; empty at unwired mesh edges).
    pub outputs: [Vec<CreditBook>; 4],
    /// Flits latched for switch traversal this cycle.
    pub latched: Vec<LatchedFlit>,
    /// Credits awaiting emission: `(input side they leave through,
    /// downstream VC index)`.
    pub pending_credits: Vec<(Direction, u8)>,
    /// Early-ejected flits awaiting delivery to the PE.
    pub pending_ejects: usize,
    /// Fault-dropped flits awaiting emission.
    pub pending_drops: usize,
    /// The router's incrementally maintained buffered-flit counter
    /// (ISSUE 10). The audit layer cross-checks it against the summed
    /// slab ring lengths to catch slab/engine divergence.
    #[serde(default)]
    pub buffered_total: usize,
    /// Slab ring-invariant health per VC: `head < ring capacity` and
    /// `len <= ring capacity` (ISSUE 10). `false` marks a corrupted
    /// ring index.
    #[serde(default)]
    pub rings_coherent: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_are_distinct() {
        let phases = [
            VcPhase::Idle,
            VcPhase::Routing,
            VcPhase::WaitingVa,
            VcPhase::Blocked,
            VcPhase::Active,
        ];
        for (i, a) in phases.iter().enumerate() {
            for b in &phases[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
