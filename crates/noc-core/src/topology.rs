//! Topology abstraction: the node/port graph the simulator runs on.
//!
//! Historically the simulator hard-wired a 2D mesh through `Coord`
//! arithmetic. This module extracts that assumption into a
//! [`TopologyOps`] trait plus four concrete instances:
//!
//! * [`MeshTopology`] — the original 2D mesh. Selecting it reproduces the
//!   pre-refactor behaviour bit for bit (the safety rail).
//! * [`TorusTopology`] — 2D torus with wraparound links; deadlock freedom
//!   restored via dateline virtual channels.
//! * [`CirculantTopology`] — ring circulant C(N; s1, s2) per Romanov 2019:
//!   N nodes on a ring, each linked to `i ± s1` and `i ± s2` (mod N).
//! * [`ChipletTopology`] — hierarchical chiplet mesh: a grid of chips,
//!   each an on-chip mesh, with slower die-to-die boundary links.
//!
//! Every topology embeds its nodes in a bounding `width × height` grid so
//! the flat row-major [`Coord::index`] addressing used throughout the
//! simulator keeps working: mesh/torus use the grid directly, a circulant
//! uses an `N × 1` strip, and a chiplet mesh uses the stitched
//! `(chips_x·chip_width) × (chips_y·chip_height)` grid.
//!
//! Port model: all four topologies are degree-≤4 and reuse the mesh port
//! set ([`Direction::MESH`]). For a circulant, East/West are the `±s1`
//! ring links and South/North the `±s2` links. Port maps are symmetric:
//! if `neighbor(a, d) == Some(b)` then `neighbor(b, d.opposite()) ==
//! Some(a)` — the invariant link wiring and credit return rely on.

use crate::config::{MeshConfig, RouterKind, RoutingKind};
use crate::error::ConfigError;
use crate::geometry::{Axis, AxisOrder, Coord, Direction};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Serializable topology selector stored in a simulation config.
///
/// The default is [`TopologyConfig::Mesh`], which defers entirely to the
/// config's `MeshConfig` and reproduces pre-topology behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TopologyConfig {
    /// Plain 2D mesh over the config's `width × height` grid.
    #[default]
    Mesh,
    /// 2D torus over the config's `width × height` grid (wraparound links).
    Torus,
    /// Ring circulant C(nodes; s1, s2): node `i` links to `i ± s1` and
    /// `i ± s2` modulo `nodes`.
    Circulant {
        /// Ring size N.
        nodes: u16,
        /// Short generator (East/West ports).
        s1: u16,
        /// Long generator (South/North ports).
        s2: u16,
    },
    /// Hierarchical chiplet mesh: `chips_x × chips_y` chips, each an
    /// on-chip `chip_width × chip_height` mesh, stitched at chip
    /// boundaries by die-to-die links of latency `d2d_delay` cycles.
    Chiplet {
        /// Number of chips along X.
        chips_x: u16,
        /// Number of chips along Y.
        chips_y: u16,
        /// On-chip mesh width per chip.
        chip_width: u16,
        /// On-chip mesh height per chip.
        chip_height: u16,
        /// Die-to-die link latency in cycles (on-chip links take 1).
        d2d_delay: u8,
    },
}

impl TopologyConfig {
    /// The bounding grid this topology occupies, given the configured
    /// mesh. Mesh and torus use `mesh` as-is; circulants use an `N × 1`
    /// strip; chiplet meshes use the stitched multi-chip grid.
    pub fn grid(&self, mesh: MeshConfig) -> MeshConfig {
        match *self {
            TopologyConfig::Mesh | TopologyConfig::Torus => mesh,
            TopologyConfig::Circulant { nodes, .. } => MeshConfig::new(nodes, 1),
            TopologyConfig::Chiplet { chips_x, chips_y, chip_width, chip_height, .. } => {
                MeshConfig::new(chips_x * chip_width, chips_y * chip_height)
            }
        }
    }

    /// Resolves the selector into a validated [`Topology`] instance.
    pub fn resolve(&self, mesh: MeshConfig) -> Result<Topology, ConfigError> {
        let topo = match *self {
            TopologyConfig::Mesh => Topology::Mesh(MeshTopology::new(mesh)?),
            TopologyConfig::Torus => Topology::Torus(TorusTopology::new(mesh)?),
            TopologyConfig::Circulant { nodes, s1, s2 } => {
                Topology::Circulant(CirculantTopology::new(nodes, s1, s2)?)
            }
            TopologyConfig::Chiplet { chips_x, chips_y, chip_width, chip_height, d2d_delay } => {
                Topology::Chiplet(ChipletTopology::new(
                    chips_x,
                    chips_y,
                    chip_width,
                    chip_height,
                    d2d_delay,
                )?)
            }
        };
        Ok(topo)
    }

    /// Parses a CLI/environment topology spec.
    ///
    /// Accepted forms:
    /// * `mesh`
    /// * `torus`
    /// * `circulant:N,s1,s2` — e.g. `circulant:13,1,5`
    /// * `chiplet:CXxCY,WxH,D` — e.g. `chiplet:2x2,4x4,4`
    pub fn parse_spec(spec: &str) -> Result<TopologyConfig, ConfigError> {
        fn pair(s: &str, what: &str) -> Result<(u16, u16), ConfigError> {
            let (a, b) = s
                .split_once('x')
                .ok_or_else(|| ConfigError::new(format!("expected WxH for {what}, got `{s}`")))?;
            let a = a.parse::<u16>().map_err(|_| ConfigError::new(format!("bad {what} `{s}`")))?;
            let b = b.parse::<u16>().map_err(|_| ConfigError::new(format!("bad {what} `{s}`")))?;
            Ok((a, b))
        }
        match spec {
            "mesh" => Ok(TopologyConfig::Mesh),
            "torus" => Ok(TopologyConfig::Torus),
            _ => {
                if let Some(rest) = spec.strip_prefix("circulant:") {
                    let parts: Vec<&str> = rest.split(',').collect();
                    if parts.len() != 3 {
                        return Err(ConfigError::new(format!(
                            "expected circulant:N,s1,s2, got `{spec}`"
                        )));
                    }
                    let nums: Result<Vec<u16>, _> =
                        parts.iter().map(|p| p.trim().parse::<u16>()).collect();
                    let nums =
                        nums.map_err(|_| ConfigError::new(format!("bad circulant spec `{spec}`")))?;
                    Ok(TopologyConfig::Circulant { nodes: nums[0], s1: nums[1], s2: nums[2] })
                } else if let Some(rest) = spec.strip_prefix("chiplet:") {
                    let parts: Vec<&str> = rest.split(',').collect();
                    if parts.len() != 3 {
                        return Err(ConfigError::new(format!(
                            "expected chiplet:CXxCY,WxH,D, got `{spec}`"
                        )));
                    }
                    let (cx, cy) = pair(parts[0].trim(), "chip grid")?;
                    let (w, h) = pair(parts[1].trim(), "chip size")?;
                    let d = parts[2]
                        .trim()
                        .parse::<u8>()
                        .map_err(|_| ConfigError::new(format!("bad d2d delay `{}`", parts[2])))?;
                    Ok(TopologyConfig::Chiplet {
                        chips_x: cx,
                        chips_y: cy,
                        chip_width: w,
                        chip_height: h,
                        d2d_delay: d,
                    })
                } else {
                    Err(ConfigError::new(format!(
                        "unknown topology `{spec}` (expected mesh, torus, circulant:N,s1,s2 \
                         or chiplet:CXxCY,WxH,D)"
                    )))
                }
            }
        }
    }
}

impl fmt::Display for TopologyConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopologyConfig::Mesh => f.write_str("mesh"),
            TopologyConfig::Torus => f.write_str("torus"),
            TopologyConfig::Circulant { nodes, s1, s2 } => {
                write!(f, "circulant:{nodes},{s1},{s2}")
            }
            TopologyConfig::Chiplet { chips_x, chips_y, chip_width, chip_height, d2d_delay } => {
                write!(f, "chiplet:{chips_x}x{chips_y},{chip_width}x{chip_height},{d2d_delay}")
            }
        }
    }
}

/// The contract every topology implements: node set, port/neighbor map,
/// per-link delay, routing-family restrictions and the deadlock-analysis
/// hook (dateline classification) consumed by the CDG verifier.
pub trait TopologyOps {
    /// Bounding grid in which node coordinates live (row-major indexing
    /// via [`Coord::index`] over `grid().width`).
    fn grid(&self) -> MeshConfig;

    /// Number of nodes. Equal to `grid().nodes()` for all shipped
    /// topologies (the grid is fully populated).
    fn nodes(&self) -> usize {
        self.grid().nodes()
    }

    /// The neighbour reached from `node` through port `dir`, or `None`
    /// when the port is unconnected (or `dir` is `Local`).
    fn neighbor(&self, node: Coord, dir: Direction) -> Option<Coord>;

    /// Latency in cycles of the link leaving `node` through `dir`
    /// (flit and credit traversal alike). Only meaningful when the port
    /// is connected; defaults to 1.
    fn link_delay(&self, _node: Coord, _dir: Direction) -> u8 {
        1
    }

    /// Upper bound of [`TopologyOps::link_delay`] over all links. The
    /// simulator sizes its link-delay wheel from this; a value of 1
    /// selects the legacy single-cycle fast path.
    fn max_link_delay(&self) -> u8 {
        1
    }

    /// Human-readable node name for reports and postmortems.
    fn node_name(&self, node: Coord) -> String;

    /// Minimal hop count between two nodes under this topology's metric.
    fn hop_distance(&self, a: Coord, b: Coord) -> u32;

    /// Whether the (router, routing) pair is supported, given the number
    /// of virtual channels per port. Wraparound topologies require the
    /// Generic router with deterministic XY routing and ≥ 2 VCs per port
    /// (the dateline scheme needs a dedicated wrapped class).
    fn check_support(
        &self,
        router: RouterKind,
        routing: RoutingKind,
        vcs_per_port: usize,
    ) -> Result<(), ConfigError>;

    /// True when rings close on themselves and dateline VC classes are
    /// needed for deadlock freedom.
    fn needs_dateline_vcs(&self) -> bool {
        false
    }

    /// Dateline classification hook for the CDG verifier and VC
    /// allocator: for a packet `src → dst`, has it already crossed the
    /// dateline of the ring it is currently traversing when buffered at
    /// `at` on the input side `in_side`? Non-wraparound topologies always
    /// answer `false`.
    fn dateline_class(&self, _src: Coord, _dst: Coord, _at: Coord, _in_side: Direction) -> bool {
        false
    }

    /// Next hop of the canonical minimal route `src → dst` when standing
    /// at `cur`, for wraparound topologies. Returns `None` for
    /// topologies routed by the mesh DOR family (mesh, chiplet) and
    /// `Some(Direction::Local)` at the destination.
    fn wrap_step(&self, _src: Coord, _cur: Coord, _dst: Coord) -> Option<Direction> {
        None
    }

    /// Validates the instance's parameters.
    fn validate(&self) -> Result<(), ConfigError>;
}

/// Direction of ring travel minimising hops from `cur` to `dst` on a ring
/// of `len` nodes, together with whether the positive direction was
/// chosen. Ties (`fwd == bwd`) break towards the positive direction
/// (East/South) so the choice is deterministic and path-consistent.
fn ring_forward(cur: u16, dst: u16, len: u16) -> bool {
    let fwd = (dst + len - cur) % len;
    let bwd = len - fwd;
    fwd <= bwd
}

/// Minimal ring distance between `a` and `b` on a ring of `len` nodes.
fn ring_distance(a: u16, b: u16, len: u16) -> u32 {
    let fwd = (b + len - a) % len;
    (fwd.min(len - fwd)) as u32
}

/// The original 2D mesh. Behaviour is byte-identical to the pre-topology
/// simulator when selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshTopology {
    mesh: MeshConfig,
}

impl MeshTopology {
    /// Creates a mesh topology over `mesh`, validating its dimensions.
    pub fn new(mesh: MeshConfig) -> Result<Self, ConfigError> {
        mesh.validate()?;
        Ok(MeshTopology { mesh })
    }
}

impl TopologyOps for MeshTopology {
    fn grid(&self) -> MeshConfig {
        self.mesh
    }

    fn neighbor(&self, node: Coord, dir: Direction) -> Option<Coord> {
        node.neighbor(dir, self.mesh.width, self.mesh.height)
    }

    fn node_name(&self, node: Coord) -> String {
        node.to_string()
    }

    fn hop_distance(&self, a: Coord, b: Coord) -> u32 {
        a.manhattan_distance(b)
    }

    fn check_support(
        &self,
        _router: RouterKind,
        _routing: RoutingKind,
        _vcs_per_port: usize,
    ) -> Result<(), ConfigError> {
        Ok(())
    }

    fn validate(&self) -> Result<(), ConfigError> {
        self.mesh.validate()
    }
}

/// 2D torus: the mesh plus wraparound links on every row and column.
///
/// Deadlock freedom: XY dimension-order routing removes cross-dimension
/// cycles, and each ring's residual cycle is broken by a dateline —
/// packets that crossed the wraparound boundary of the ring they are
/// traversing move to the dedicated dateline VC class, so channel
/// dependencies cannot close around the ring (Dally & Seitz datelines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TorusTopology {
    mesh: MeshConfig,
}

impl TorusTopology {
    /// Creates a torus over `mesh`. Requires at least 3×3 so that the
    /// two ring directions reach distinct neighbours.
    pub fn new(mesh: MeshConfig) -> Result<Self, ConfigError> {
        let t = TorusTopology { mesh };
        t.validate()?;
        Ok(t)
    }

    /// Has the canonical X-phase route `src → dst` already wrapped when
    /// standing at `x`? The X ring direction is fixed by `src → dst`
    /// alone, so this is a pure function of the packet header.
    fn x_wrapped(&self, src: Coord, dst: Coord, x: u16) -> bool {
        if src.x == dst.x {
            return false;
        }
        if ring_forward(src.x, dst.x, self.mesh.width) {
            // Travelling East: a wrap means our position fell below src.
            x < src.x
        } else {
            x > src.x
        }
    }

    fn y_wrapped(&self, src: Coord, dst: Coord, y: u16) -> bool {
        if src.y == dst.y {
            return false;
        }
        if ring_forward(src.y, dst.y, self.mesh.height) {
            y < src.y
        } else {
            y > src.y
        }
    }
}

impl TopologyOps for TorusTopology {
    fn grid(&self) -> MeshConfig {
        self.mesh
    }

    fn neighbor(&self, node: Coord, dir: Direction) -> Option<Coord> {
        let (w, h) = (self.mesh.width, self.mesh.height);
        match dir {
            Direction::North => Some(Coord::new(node.x, (node.y + h - 1) % h)),
            Direction::South => Some(Coord::new(node.x, (node.y + 1) % h)),
            Direction::East => Some(Coord::new((node.x + 1) % w, node.y)),
            Direction::West => Some(Coord::new((node.x + w - 1) % w, node.y)),
            Direction::Local => None,
        }
    }

    fn node_name(&self, node: Coord) -> String {
        node.to_string()
    }

    fn hop_distance(&self, a: Coord, b: Coord) -> u32 {
        ring_distance(a.x, b.x, self.mesh.width) + ring_distance(a.y, b.y, self.mesh.height)
    }

    fn check_support(
        &self,
        router: RouterKind,
        routing: RoutingKind,
        vcs_per_port: usize,
    ) -> Result<(), ConfigError> {
        wraparound_support("torus", router, routing, vcs_per_port)
    }

    fn needs_dateline_vcs(&self) -> bool {
        true
    }

    fn dateline_class(&self, src: Coord, dst: Coord, at: Coord, in_side: Direction) -> bool {
        match in_side.axis() {
            // Buffered on an X-side port: the packet is in its X phase.
            Some(Axis::X) => self.x_wrapped(src, dst, at.x),
            Some(Axis::Y) => self.y_wrapped(src, dst, at.y),
            None => false,
        }
    }

    fn wrap_step(&self, _src: Coord, cur: Coord, dst: Coord) -> Option<Direction> {
        if cur == dst {
            return Some(Direction::Local);
        }
        if cur.x != dst.x {
            Some(if ring_forward(cur.x, dst.x, self.mesh.width) {
                Direction::East
            } else {
                Direction::West
            })
        } else {
            Some(if ring_forward(cur.y, dst.y, self.mesh.height) {
                Direction::South
            } else {
                Direction::North
            })
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.mesh.width < 3 || self.mesh.height < 3 {
            return Err(ConfigError::new(format!(
                "torus requires at least a 3x3 grid, got {}x{}",
                self.mesh.width, self.mesh.height
            )));
        }
        self.mesh.validate()
    }
}

/// Ring circulant C(N; s1, s2): N nodes on a ring where node `i` links to
/// `i ± s1` (East/West ports) and `i ± s2` (South/North ports), all
/// modulo N. Romanov 2019 shows well-chosen circulants beat meshes and
/// tori of equal degree on diameter and average distance.
///
/// Routing uses a canonical minimal decomposition `delta = a·s1 + b·s2
/// (mod N)` computed once by BFS: the `a` steps run first (the "s1
/// phase", East/West), then the `b` steps (the "s2 phase", South/North) —
/// a dimension-order discipline on the two generators. Deadlock freedom
/// mirrors the torus argument: the phase order removes cross-generator
/// cycles, and each generator's ring is cut by a dateline at residue 0
/// (a step that wraps past node 0 moves the packet to the dateline VC
/// class). Validation guarantees each phase wraps at most once.
#[derive(Debug, Clone)]
pub struct CirculantTopology {
    n: u16,
    s1: u16,
    s2: u16,
    /// Canonical minimal (a, b) decomposition for every delta in 0..N:
    /// delta ≡ a·s1 + b·s2 (mod N), |a| + |b| minimal, ties broken by
    /// BFS step order (+s1, −s1, +s2, −s2).
    decomp: Arc<[(i16, i16)]>,
}

impl PartialEq for CirculantTopology {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.s1 == other.s1 && self.s2 == other.s2
    }
}

impl Eq for CirculantTopology {}

impl CirculantTopology {
    /// Builds C(N; s1, s2), computing the canonical route decomposition
    /// table and validating the parameters.
    pub fn new(n: u16, s1: u16, s2: u16) -> Result<Self, ConfigError> {
        if n < 5 {
            return Err(ConfigError::new(format!("circulant needs at least 5 nodes, got {n}")));
        }
        if s1 == 0 || s2 == 0 || s1 >= n || s2 >= n {
            return Err(ConfigError::new(format!(
                "circulant generators must satisfy 0 < s1, s2 < N; got s1={s1}, s2={s2}, N={n}"
            )));
        }
        if s1 >= s2 {
            return Err(ConfigError::new(format!(
                "circulant generators must satisfy s1 < s2; got s1={s1}, s2={s2}"
            )));
        }
        if 2 * s1 == n || 2 * s2 == n || s1 + s2 == n {
            return Err(ConfigError::new(format!(
                "degenerate circulant C({n};{s1},{s2}): generators may not coincide \
                 or oppose (2*s1, 2*s2 and s1+s2 must differ from N)"
            )));
        }
        let decomp = Self::decompose(n, s1, s2)?;
        let t = CirculantTopology { n, s1, s2, decomp: decomp.into() };
        Ok(t)
    }

    /// BFS over residues from 0 with fixed step order (+s1, −s1, +s2,
    /// −s2), recording the first (shortest, canonically tie-broken)
    /// (a, b) decomposition of every delta.
    fn decompose(n: u16, s1: u16, s2: u16) -> Result<Vec<(i16, i16)>, ConfigError> {
        let n_us = n as usize;
        let mut table: Vec<Option<(i16, i16)>> = vec![None; n_us];
        table[0] = Some((0, 0));
        let mut frontier = vec![0usize];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &node in &frontier {
                let (a, b) = table[node].unwrap();
                let steps = [
                    ((node + s1 as usize) % n_us, (a + 1, b)),
                    ((node + n_us - s1 as usize) % n_us, (a - 1, b)),
                    ((node + s2 as usize) % n_us, (a, b + 1)),
                    ((node + n_us - s2 as usize) % n_us, (a, b - 1)),
                ];
                for (dest, dec) in steps {
                    if table[dest].is_none() {
                        table[dest] = Some(dec);
                        next.push(dest);
                    }
                }
            }
            frontier = next;
        }
        let mut out = Vec::with_capacity(n_us);
        for (delta, entry) in table.into_iter().enumerate() {
            let (a, b) = entry.ok_or_else(|| {
                ConfigError::new(format!(
                    "circulant C({n};{s1},{s2}) is disconnected: residue {delta} unreachable"
                ))
            })?;
            // Each routing phase must wrap the ring at most once so the
            // single-dateline VC scheme stays sound.
            if (a.unsigned_abs() as u32) * (s1 as u32) >= n as u32
                || (b.unsigned_abs() as u32) * (s2 as u32) >= n as u32
            {
                return Err(ConfigError::new(format!(
                    "circulant C({n};{s1},{s2}): canonical route for delta {delta} \
                     wraps a generator ring more than once"
                )));
            }
            out.push((a, b));
        }
        Ok(out)
    }

    /// Ring size N.
    pub fn len(&self) -> u16 {
        self.n
    }

    /// True when the ring is empty (never: construction requires N ≥ 5).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The generators (s1, s2).
    pub fn generators(&self) -> (u16, u16) {
        (self.s1, self.s2)
    }

    fn residue(&self, c: Coord) -> u16 {
        c.x
    }

    fn step(&self, node: u16, dir: Direction) -> u16 {
        let n = self.n;
        match dir {
            Direction::East => (node + self.s1) % n,
            Direction::West => (node + n - self.s1) % n,
            Direction::South => (node + self.s2) % n,
            Direction::North => (node + n - self.s2) % n,
            Direction::Local => node,
        }
    }

    /// Walks the canonical route `src → dst` and reports, per hop, the
    /// position *before* the hop, the hop direction, and whether the
    /// packet has wrapped within the current phase once the hop lands.
    fn walk<F: FnMut(u16, Direction, bool) -> bool>(&self, src: u16, dst: u16, mut visit: F) {
        let delta = ((dst + self.n - src) % self.n) as usize;
        let (a, b) = self.decomp[delta];
        let mut pos = src;
        let mut wrapped = false;
        let (dir_a, steps_a) =
            if a >= 0 { (Direction::East, a as u16) } else { (Direction::West, a.unsigned_abs()) };
        for _ in 0..steps_a {
            let next = self.step(pos, dir_a);
            // A +s step wraps when it passes residue 0 going up; a −s
            // step when it passes 0 going down.
            wrapped |= if dir_a == Direction::East { next < pos } else { next > pos };
            if !visit(pos, dir_a, wrapped) {
                return;
            }
            pos = next;
        }
        wrapped = false;
        let (dir_b, steps_b) = if b >= 0 {
            (Direction::South, b as u16)
        } else {
            (Direction::North, b.unsigned_abs())
        };
        for _ in 0..steps_b {
            let next = self.step(pos, dir_b);
            wrapped |= if dir_b == Direction::South { next < pos } else { next > pos };
            if !visit(pos, dir_b, wrapped) {
                return;
            }
            pos = next;
        }
    }
}

impl TopologyOps for CirculantTopology {
    fn grid(&self) -> MeshConfig {
        MeshConfig::new(self.n, 1)
    }

    fn neighbor(&self, node: Coord, dir: Direction) -> Option<Coord> {
        if dir == Direction::Local || node.y != 0 || node.x >= self.n {
            return None;
        }
        Some(Coord::new(self.step(node.x, dir), 0))
    }

    fn node_name(&self, node: Coord) -> String {
        format!("#{}", node.x)
    }

    fn hop_distance(&self, a: Coord, b: Coord) -> u32 {
        let delta = ((self.residue(b) + self.n - self.residue(a)) % self.n) as usize;
        let (x, y) = self.decomp[delta];
        x.unsigned_abs() as u32 + y.unsigned_abs() as u32
    }

    fn check_support(
        &self,
        router: RouterKind,
        routing: RoutingKind,
        vcs_per_port: usize,
    ) -> Result<(), ConfigError> {
        wraparound_support("circulant", router, routing, vcs_per_port)
    }

    fn needs_dateline_vcs(&self) -> bool {
        true
    }

    fn dateline_class(&self, src: Coord, dst: Coord, at: Coord, in_side: Direction) -> bool {
        let phase_axis = match in_side.axis() {
            Some(axis) => axis,
            None => return false,
        };
        let (src_r, dst_r, at_r) = (self.residue(src), self.residue(dst), self.residue(at));
        if src_r == dst_r {
            return false;
        }
        let mut out = false;
        self.walk(src_r, dst_r, |pos, dir, wrapped| {
            let landing = self.step(pos, dir);
            if landing == at_r && dir.axis() == Some(phase_axis) {
                out = wrapped;
                return false;
            }
            true
        });
        out
    }

    fn wrap_step(&self, src: Coord, cur: Coord, dst: Coord) -> Option<Direction> {
        if cur == dst {
            return Some(Direction::Local);
        }
        let (src_r, cur_r, dst_r) = (self.residue(src), self.residue(cur), self.residue(dst));
        let mut found = None;
        self.walk(src_r, dst_r, |pos, dir, _| {
            if pos == cur_r {
                found = Some(dir);
                return false;
            }
            true
        });
        // A flit can only sit on its canonical path; fall back to a fresh
        // minimal route from the current node if the walk missed it.
        found.or_else(|| {
            let mut first = None;
            self.walk(cur_r, dst_r, |_, dir, _| {
                first = Some(dir);
                false
            });
            first
        })
    }

    fn validate(&self) -> Result<(), ConfigError> {
        // Construction already validated; re-run the cheap checks.
        if self.n < 5 || self.s1 == 0 || self.s1 >= self.s2 {
            return Err(ConfigError::new("invalid circulant parameters".to_string()));
        }
        Ok(())
    }
}

/// Hierarchical chiplet mesh: `chips_x × chips_y` chips, each an on-chip
/// `chip_width × chip_height` mesh. Adjacent chips are stitched along
/// their facing edges, so the node graph is a plain
/// `(chips_x·chip_width) × (chips_y·chip_height)` mesh — but links that
/// cross a chip boundary are die-to-die and take `d2d_delay` cycles
/// instead of 1 (per-port wire delays as in popnet_chiplet's
/// `getWireDelay_chipletMesh`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipletTopology {
    chips_x: u16,
    chips_y: u16,
    chip_width: u16,
    chip_height: u16,
    d2d_delay: u8,
}

impl ChipletTopology {
    /// Builds a chiplet mesh and validates the parameters.
    pub fn new(
        chips_x: u16,
        chips_y: u16,
        chip_width: u16,
        chip_height: u16,
        d2d_delay: u8,
    ) -> Result<Self, ConfigError> {
        let t = ChipletTopology { chips_x, chips_y, chip_width, chip_height, d2d_delay };
        t.validate()?;
        Ok(t)
    }

    /// Die-to-die link latency in cycles.
    pub fn d2d_delay(&self) -> u8 {
        self.d2d_delay
    }

    /// True when the link leaving `node` through `dir` crosses a chip
    /// boundary (and is therefore a die-to-die link).
    fn crosses_boundary(&self, node: Coord, dir: Direction) -> bool {
        match dir {
            Direction::East => (node.x + 1) % self.chip_width == 0,
            Direction::West => node.x % self.chip_width == 0,
            Direction::South => (node.y + 1) % self.chip_height == 0,
            Direction::North => node.y % self.chip_height == 0,
            Direction::Local => false,
        }
    }
}

impl TopologyOps for ChipletTopology {
    fn grid(&self) -> MeshConfig {
        MeshConfig::new(self.chips_x * self.chip_width, self.chips_y * self.chip_height)
    }

    fn neighbor(&self, node: Coord, dir: Direction) -> Option<Coord> {
        let g = self.grid();
        node.neighbor(dir, g.width, g.height)
    }

    fn link_delay(&self, node: Coord, dir: Direction) -> u8 {
        if self.crosses_boundary(node, dir) {
            self.d2d_delay
        } else {
            1
        }
    }

    fn max_link_delay(&self) -> u8 {
        self.d2d_delay.max(1)
    }

    fn node_name(&self, node: Coord) -> String {
        let (cx, cy) = (node.x / self.chip_width, node.y / self.chip_height);
        let (lx, ly) = (node.x % self.chip_width, node.y % self.chip_height);
        format!("chip({cx},{cy})/({lx},{ly})")
    }

    fn hop_distance(&self, a: Coord, b: Coord) -> u32 {
        a.manhattan_distance(b)
    }

    fn check_support(
        &self,
        _router: RouterKind,
        _routing: RoutingKind,
        _vcs_per_port: usize,
    ) -> Result<(), ConfigError> {
        Ok(())
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.chips_x == 0 || self.chips_y == 0 {
            return Err(ConfigError::new("chiplet grid must have at least one chip".to_string()));
        }
        if self.chip_width == 0 || self.chip_height == 0 {
            return Err(ConfigError::new("chip dimensions must be positive".to_string()));
        }
        if self.d2d_delay == 0 {
            return Err(ConfigError::new("die-to-die delay must be at least 1 cycle".to_string()));
        }
        self.grid().validate()
    }
}

/// A resolved topology instance. Delegates [`TopologyOps`] to the
/// concrete variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// The original 2D mesh.
    Mesh(MeshTopology),
    /// 2D torus with wraparound links.
    Torus(TorusTopology),
    /// Ring circulant C(N; s1, s2).
    Circulant(CirculantTopology),
    /// Hierarchical chiplet mesh.
    Chiplet(ChipletTopology),
}

impl Topology {
    /// Convenience constructor for the common mesh case.
    ///
    /// # Panics
    ///
    /// Panics if `mesh` fails validation; use [`MeshTopology::new`] for a
    /// fallible build.
    pub fn mesh(mesh: MeshConfig) -> Topology {
        Topology::Mesh(MeshTopology::new(mesh).expect("invalid mesh config"))
    }

    /// True for mesh-family topologies routed by the DOR/adaptive mesh
    /// routing functions (mesh and chiplet); false for wraparound
    /// topologies with their own canonical routes.
    pub fn is_mesh_routed(&self) -> bool {
        matches!(self, Topology::Mesh(_) | Topology::Chiplet(_))
    }

    /// The [`TopologyConfig`] selector that resolves back to this
    /// instance (given the same grid).
    pub fn config(&self) -> TopologyConfig {
        match self {
            Topology::Mesh(_) => TopologyConfig::Mesh,
            Topology::Torus(_) => TopologyConfig::Torus,
            Topology::Circulant(c) => TopologyConfig::Circulant { nodes: c.n, s1: c.s1, s2: c.s2 },
            Topology::Chiplet(c) => TopologyConfig::Chiplet {
                chips_x: c.chips_x,
                chips_y: c.chips_y,
                chip_width: c.chip_width,
                chip_height: c.chip_height,
                d2d_delay: c.d2d_delay,
            },
        }
    }
}

impl From<MeshConfig> for Topology {
    fn from(mesh: MeshConfig) -> Topology {
        Topology::mesh(mesh)
    }
}

impl From<&Topology> for Topology {
    fn from(t: &Topology) -> Topology {
        t.clone()
    }
}

macro_rules! delegate {
    ($self:ident, $t:ident => $body:expr) => {
        match $self {
            Topology::Mesh($t) => $body,
            Topology::Torus($t) => $body,
            Topology::Circulant($t) => $body,
            Topology::Chiplet($t) => $body,
        }
    };
}

impl TopologyOps for Topology {
    fn grid(&self) -> MeshConfig {
        delegate!(self, t => t.grid())
    }

    fn nodes(&self) -> usize {
        delegate!(self, t => t.nodes())
    }

    fn neighbor(&self, node: Coord, dir: Direction) -> Option<Coord> {
        delegate!(self, t => t.neighbor(node, dir))
    }

    fn link_delay(&self, node: Coord, dir: Direction) -> u8 {
        delegate!(self, t => t.link_delay(node, dir))
    }

    fn max_link_delay(&self) -> u8 {
        delegate!(self, t => t.max_link_delay())
    }

    fn node_name(&self, node: Coord) -> String {
        delegate!(self, t => t.node_name(node))
    }

    fn hop_distance(&self, a: Coord, b: Coord) -> u32 {
        delegate!(self, t => t.hop_distance(a, b))
    }

    fn check_support(
        &self,
        router: RouterKind,
        routing: RoutingKind,
        vcs_per_port: usize,
    ) -> Result<(), ConfigError> {
        delegate!(self, t => t.check_support(router, routing, vcs_per_port))
    }

    fn needs_dateline_vcs(&self) -> bool {
        delegate!(self, t => t.needs_dateline_vcs())
    }

    fn dateline_class(&self, src: Coord, dst: Coord, at: Coord, in_side: Direction) -> bool {
        delegate!(self, t => t.dateline_class(src, dst, at, in_side))
    }

    fn wrap_step(&self, src: Coord, cur: Coord, dst: Coord) -> Option<Direction> {
        delegate!(self, t => t.wrap_step(src, cur, dst))
    }

    fn validate(&self) -> Result<(), ConfigError> {
        delegate!(self, t => t.validate())
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.config().fmt(f)
    }
}

fn wraparound_support(
    name: &str,
    router: RouterKind,
    routing: RoutingKind,
    vcs_per_port: usize,
) -> Result<(), ConfigError> {
    if router != RouterKind::Generic {
        return Err(ConfigError::new(format!(
            "{name} topology requires the generic router (RoCo and path-sensitive VC \
             layouts cannot express dateline classes); got {router}"
        )));
    }
    if routing != RoutingKind::Xy {
        return Err(ConfigError::new(format!(
            "{name} topology requires deterministic XY routing (adaptive mesh turn \
             models are unsound under wraparound); got {routing}"
        )));
    }
    if vcs_per_port < 2 {
        return Err(ConfigError::new(format!(
            "{name} topology needs >= 2 VCs per port for the dateline scheme; got \
             {vcs_per_port}"
        )));
    }
    Ok(())
}

/// The axis order implied by a wraparound topology's canonical routes.
/// Both torus XY-DOR and the circulant s1-then-s2 discipline exhaust the
/// X-mapped generator first.
pub const WRAP_AXIS_ORDER: AxisOrder = AxisOrder::Xy;

#[cfg(test)]
mod tests {
    use super::*;

    fn all_topologies() -> Vec<Topology> {
        vec![
            Topology::Mesh(MeshTopology::new(MeshConfig::new(4, 4)).unwrap()),
            Topology::Torus(TorusTopology::new(MeshConfig::new(4, 4)).unwrap()),
            Topology::Circulant(CirculantTopology::new(13, 1, 5).unwrap()),
            Topology::Chiplet(ChipletTopology::new(2, 2, 3, 3, 4).unwrap()),
        ]
    }

    #[test]
    fn port_maps_are_symmetric() {
        for topo in all_topologies() {
            let g = topo.grid();
            for idx in 0..topo.nodes() {
                let a = Coord::from_index(idx, g.width);
                for dir in Direction::MESH {
                    if let Some(b) = topo.neighbor(a, dir) {
                        assert_eq!(
                            topo.neighbor(b, dir.opposite()),
                            Some(a),
                            "asymmetric port map on {topo}: {a} --{dir}--> {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mesh_topology_matches_coord_arithmetic() {
        let mesh = MeshConfig::new(5, 3);
        let topo = Topology::mesh(mesh);
        for idx in 0..mesh.nodes() {
            let c = Coord::from_index(idx, mesh.width);
            for dir in Direction::ALL {
                assert_eq!(topo.neighbor(c, dir), c.neighbor(dir, mesh.width, mesh.height));
            }
        }
    }

    #[test]
    fn torus_wraps_edges() {
        let t = TorusTopology::new(MeshConfig::new(4, 3)).unwrap();
        assert_eq!(t.neighbor(Coord::new(0, 0), Direction::West), Some(Coord::new(3, 0)));
        assert_eq!(t.neighbor(Coord::new(3, 0), Direction::East), Some(Coord::new(0, 0)));
        assert_eq!(t.neighbor(Coord::new(0, 0), Direction::North), Some(Coord::new(0, 2)));
        assert_eq!(t.neighbor(Coord::new(0, 2), Direction::South), Some(Coord::new(0, 0)));
    }

    #[test]
    fn torus_routes_are_minimal_and_terminate() {
        let t = TorusTopology::new(MeshConfig::new(5, 4)).unwrap();
        let g = t.grid();
        for s in 0..t.nodes() {
            for d in 0..t.nodes() {
                let src = Coord::from_index(s, g.width);
                let dst = Coord::from_index(d, g.width);
                let mut cur = src;
                let mut hops = 0;
                loop {
                    match t.wrap_step(src, cur, dst) {
                        Some(Direction::Local) => break,
                        Some(dir) => {
                            cur = t.neighbor(cur, dir).unwrap();
                            hops += 1;
                            assert!(hops <= 16, "route {src}->{dst} does not terminate");
                        }
                        None => panic!("torus must always produce a step"),
                    }
                }
                assert_eq!(cur, dst);
                assert_eq!(hops, t.hop_distance(src, dst), "non-minimal route {src}->{dst}");
            }
        }
    }

    #[test]
    fn torus_dateline_is_path_consistent() {
        // Walking any route, the dateline class must start false in each
        // phase and flip to true at most once (never back to false).
        let t = TorusTopology::new(MeshConfig::new(5, 5)).unwrap();
        let g = t.grid();
        for s in 0..t.nodes() {
            for d in 0..t.nodes() {
                let src = Coord::from_index(s, g.width);
                let dst = Coord::from_index(d, g.width);
                let mut cur = src;
                let mut prev_axis = None;
                let mut prev_class = false;
                loop {
                    let dir = match t.wrap_step(src, cur, dst) {
                        Some(Direction::Local) | None => break,
                        Some(dir) => dir,
                    };
                    let next = t.neighbor(cur, dir).unwrap();
                    let class = t.dateline_class(src, dst, next, dir.opposite());
                    let axis = dir.axis();
                    if axis == prev_axis {
                        assert!(
                            class || !prev_class,
                            "dateline class reverted on {src}->{dst} at {next}"
                        );
                    }
                    prev_axis = axis;
                    prev_class = class;
                    cur = next;
                }
            }
        }
    }

    #[test]
    fn circulant_c13_1_5_has_diameter_two() {
        // C(13; 1, 5) is the classic optimal circulant: 13 nodes, degree
        // 4, diameter 2.
        let c = CirculantTopology::new(13, 1, 5).unwrap();
        let mut diameter = 0;
        for a in 0..13 {
            for b in 0..13 {
                diameter = diameter.max(c.hop_distance(Coord::new(a, 0), Coord::new(b, 0)));
            }
        }
        assert_eq!(diameter, 2);
    }

    #[test]
    fn circulant_routes_are_minimal_and_terminate() {
        for (n, s1, s2) in [(13u16, 1u16, 5u16), (12, 1, 5), (16, 1, 7), (11, 2, 3)] {
            let c = match CirculantTopology::new(n, s1, s2) {
                Ok(c) => c,
                Err(_) => continue,
            };
            let topo = Topology::Circulant(c.clone());
            for s in 0..n {
                for d in 0..n {
                    let src = Coord::new(s, 0);
                    let dst = Coord::new(d, 0);
                    let mut cur = src;
                    let mut hops = 0;
                    loop {
                        match topo.wrap_step(src, cur, dst) {
                            Some(Direction::Local) => break,
                            Some(dir) => {
                                cur = topo.neighbor(cur, dir).unwrap();
                                hops += 1;
                                assert!(hops <= n as u32, "no termination {src}->{dst}");
                            }
                            None => panic!("circulant must produce a step"),
                        }
                    }
                    assert_eq!(cur, dst);
                    assert_eq!(hops, topo.hop_distance(src, dst));
                }
            }
        }
    }

    #[test]
    fn circulant_rejects_degenerate_parameters() {
        assert!(CirculantTopology::new(4, 1, 2).is_err(), "too small");
        assert!(CirculantTopology::new(10, 0, 3).is_err(), "zero generator");
        assert!(CirculantTopology::new(10, 3, 3).is_err(), "equal generators");
        assert!(CirculantTopology::new(10, 1, 5).is_err(), "2*s2 == N");
        assert!(CirculantTopology::new(10, 3, 7).is_err(), "s1+s2 == N");
    }

    #[test]
    fn chiplet_boundary_links_are_slow() {
        let c = ChipletTopology::new(2, 2, 3, 3, 4).unwrap();
        // Inside chip (0,0): short links.
        assert_eq!(c.link_delay(Coord::new(1, 1), Direction::East), 1);
        // Crossing from chip (0,0) into chip (1,0): die-to-die.
        assert_eq!(c.link_delay(Coord::new(2, 1), Direction::East), 4);
        assert_eq!(c.link_delay(Coord::new(3, 1), Direction::West), 4);
        // Vertical boundary.
        assert_eq!(c.link_delay(Coord::new(1, 2), Direction::South), 4);
        assert_eq!(c.link_delay(Coord::new(1, 3), Direction::North), 4);
        // Mesh edge ports are unconnected but boundary math still holds.
        assert_eq!(c.max_link_delay(), 4);
        assert_eq!(c.grid(), MeshConfig::new(6, 6));
    }

    #[test]
    fn chiplet_names_nodes_by_chip() {
        let c = ChipletTopology::new(2, 2, 3, 3, 4).unwrap();
        assert_eq!(c.node_name(Coord::new(4, 1)), "chip(1,0)/(1,1)");
        let circ = CirculantTopology::new(13, 1, 5).unwrap();
        assert_eq!(circ.node_name(Coord::new(7, 0)), "#7");
    }

    #[test]
    fn config_grid_and_resolve_round_trip() {
        let mesh = MeshConfig::new(6, 6);
        for cfg in [
            TopologyConfig::Mesh,
            TopologyConfig::Torus,
            TopologyConfig::Circulant { nodes: 13, s1: 1, s2: 5 },
            TopologyConfig::Chiplet {
                chips_x: 2,
                chips_y: 2,
                chip_width: 3,
                chip_height: 3,
                d2d_delay: 4,
            },
        ] {
            let grid = cfg.grid(mesh);
            let topo = cfg.resolve(grid).unwrap();
            assert_eq!(topo.grid(), grid);
            assert_eq!(topo.config(), cfg);
            assert_eq!(TopologyConfig::parse_spec(&cfg.to_string()).unwrap(), cfg);
        }
    }

    #[test]
    fn parse_spec_rejects_garbage() {
        assert!(TopologyConfig::parse_spec("hypercube").is_err());
        assert!(TopologyConfig::parse_spec("circulant:13,1").is_err());
        assert!(TopologyConfig::parse_spec("chiplet:2x2").is_err());
        assert_eq!(
            TopologyConfig::parse_spec("chiplet:2x2,4x4,4").unwrap(),
            TopologyConfig::Chiplet {
                chips_x: 2,
                chips_y: 2,
                chip_width: 4,
                chip_height: 4,
                d2d_delay: 4
            }
        );
    }

    #[test]
    fn support_restrictions() {
        let torus = Topology::Torus(TorusTopology::new(MeshConfig::new(4, 4)).unwrap());
        assert!(torus.check_support(RouterKind::Generic, RoutingKind::Xy, 2).is_ok());
        assert!(torus.check_support(RouterKind::RoCo, RoutingKind::Xy, 3).is_err());
        assert!(torus.check_support(RouterKind::Generic, RoutingKind::Adaptive, 2).is_err());
        assert!(torus.check_support(RouterKind::Generic, RoutingKind::Xy, 1).is_err());
        let mesh = Topology::mesh(MeshConfig::new(4, 4));
        assert!(mesh.check_support(RouterKind::RoCo, RoutingKind::Adaptive, 3).is_ok());
    }

    #[test]
    fn torus_requires_3x3() {
        assert!(TorusTopology::new(MeshConfig::new(2, 4)).is_err());
        assert!(TorusTopology::new(MeshConfig::new(3, 3)).is_ok());
    }
}
