//! The router-node abstraction the network simulator drives.
//!
//! Every router architecture (generic, Path-Sensitive, RoCo) implements
//! [`RouterNode`]; the simulator in `noc-sim` is generic over it. The
//! trait's contract encodes the paper's two-stage pipeline: flits and
//! credits delivered at the start of a cycle may be acted upon by the
//! same cycle's allocation stage, and `step` returns everything that
//! leaves the router during that cycle (flits begin their single-cycle
//! link traversal when `step` emits them).

use crate::config::RouterConfig;
use crate::counters::{ActivityCounters, ContentionCounters};
use crate::flit::{Cycle, Flit};
use crate::geometry::{Axis, Coord, Direction};
use crate::probe::{AuditProbe, VcSnapshot};
use crate::slab::{SlabView, SlabWindow};
use crate::vc::{Credit, VcDescriptor};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Sentinel VC index used when transferring a flit that will be handled
/// by Early Ejection downstream (no downstream VC is allocated).
pub const EJECT_VC: u8 = u8::MAX;

/// Health of one RoCo module (or of a whole generic/Path-Sensitive node,
/// which degrades as a unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModuleHealth {
    /// Fully functional.
    Healthy,
    /// Operating with a Hardware-Recycling workaround (§4): reduced
    /// throughput but correct.
    Degraded,
    /// Isolated after a critical or router-centric fault.
    Dead,
}

impl ModuleHealth {
    /// `true` unless the module is [`ModuleHealth::Dead`].
    pub fn is_operational(self) -> bool {
        self != ModuleHealth::Dead
    }
}

/// Operational state of a node, tracked by neighbouring routers through
/// handshake signals (§4.1) and consulted by look-ahead routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStatus {
    /// Row (East–West) module health. For generic and Path-Sensitive
    /// routers both fields move together: any hard fault kills the node.
    pub row: ModuleHealth,
    /// Column (North–South) module health.
    pub col: ModuleHealth,
    /// Whether the Routing Computation unit works; when `false`,
    /// downstream neighbours must perform Double Routing (§4.1, Fig 5).
    pub rc_ok: bool,
}

impl NodeStatus {
    /// A fully healthy node.
    pub fn healthy() -> Self {
        NodeStatus { row: ModuleHealth::Healthy, col: ModuleHealth::Healthy, rc_ok: true }
    }

    /// Whether both modules are dead (the whole node is off-line).
    pub fn node_dead(&self) -> bool {
        self.row == ModuleHealth::Dead && self.col == ModuleHealth::Dead
    }

    /// Health of the module serving `axis`.
    pub fn module(&self, axis: Axis) -> ModuleHealth {
        match axis {
            Axis::X => self.row,
            Axis::Y => self.col,
        }
    }

    /// Whether a flit requiring output `dir` *at this node* can be
    /// served. Ejection survives single-module failures thanks to Early
    /// Ejection, but not a whole-node failure.
    pub fn can_serve_output(&self, dir: Direction) -> bool {
        match dir.axis() {
            Some(a) => self.module(a).is_operational(),
            None => !self.node_dead(),
        }
    }
}

impl Default for NodeStatus {
    fn default() -> Self {
        NodeStatus::healthy()
    }
}

/// Stream selector for [`router_rng`]: draws consumed inside
/// [`RouterNode::step`].
pub const RNG_STREAM_STEP: u64 = 0;

/// Stream selector for [`router_rng`]: draws consumed inside
/// [`RouterNode::try_inject`].
pub const RNG_STREAM_INJECT: u64 = 1;

/// Derives the counter-based RNG stream a router draws from during one
/// cycle of one phase.
///
/// Every kernel (Reference, Optimized, Parallel) seeds a fresh
/// [`SmallRng`] from `(master_seed, router_index, cycle, stream)`
/// before calling into a router, so the numbers a router sees depend
/// only on *which router* is stepping on *which cycle* — never on how
/// many other routers stepped first, which routers the wake-set
/// skipped, or which worker thread ran the shard. That independence is
/// what lets `SimResults::digest()` equality hold across kernels and
/// across thread counts.
///
/// The mixer is a SplitMix64-style finalizer chain: each counter is
/// absorbed with its own odd offset and avalanched before the next, so
/// nearby `(router, cycle)` pairs land in unrelated streams.
pub fn router_rng(master_seed: u64, router_index: usize, cycle: Cycle, stream: u64) -> SmallRng {
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut h = mix(master_seed ^ 0x9E37_79B9_7F4A_7C15);
    h = mix(h ^ (router_index as u64).wrapping_add(0xA076_1D64_78BD_642F));
    h = mix(h ^ cycle.wrapping_add(0xE703_7ED1_A0B4_28DB));
    h = mix(h ^ stream.wrapping_add(0x8EBC_6AF0_9C88_C6E3));
    rand::SeedableRng::seed_from_u64(h)
}

/// Per-cycle context handed to [`RouterNode::step`].
#[derive(Debug)]
pub struct StepContext<'a> {
    /// Current simulation cycle.
    pub cycle: Cycle,
    /// Deterministic RNG (arbitration tie-breaks, XY-YX coin flips,
    /// adaptive selection). The simulator hands each router its own
    /// counter-based stream from [`router_rng`], so draws are
    /// independent of step order and thread count.
    pub rng: &'a mut SmallRng,
    /// Operational status of the four mesh neighbours (`None` at a mesh
    /// boundary), indexed by [`Direction::index`].
    pub neighbors: [Option<NodeStatus>; 4],
    /// Network-wide usable-link mask built from the published statuses
    /// (ISSUE 8). `None` when fault-aware routing is disabled — routers
    /// then behave exactly as before the mask existed.
    pub mask: Option<&'a crate::mask::LinkMask>,
}

impl<'a> StepContext<'a> {
    /// Creates a context; `neighbors` defaults to all-absent and `mask`
    /// to absent (fault-oblivious routing).
    pub fn new(cycle: Cycle, rng: &'a mut SmallRng) -> Self {
        StepContext { cycle, rng, neighbors: [None; 4], mask: None }
    }

    /// Status of the neighbour reached through `dir`.
    ///
    /// # Panics
    ///
    /// Panics if `dir` is [`Direction::Local`].
    pub fn neighbor_status(&self, dir: Direction) -> Option<NodeStatus> {
        assert!(dir != Direction::Local, "the local PE has no neighbour status");
        self.neighbors[dir.index()]
    }
}

/// Everything leaving a router in one cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouterOutputs {
    /// Flits entering their output links: `(output direction, downstream
    /// input-VC index or [`EJECT_VC`], flit)`.
    pub flits: Vec<(Direction, u8, Flit)>,
    /// Credits returned to upstream neighbours: `(input side the credit
    /// leaves through, credit)`.
    pub credits: Vec<(Direction, Credit)>,
    /// Flits delivered to the local PE this cycle.
    pub ejected: Vec<Flit>,
    /// Flits discarded because a fault made their route unserviceable
    /// (§4.1: "any fragmented packets are simply discarded").
    pub dropped: Vec<Flit>,
}

impl RouterOutputs {
    /// An empty output set.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when nothing left the router.
    pub fn is_empty(&self) -> bool {
        self.flits.is_empty()
            && self.credits.is_empty()
            && self.ejected.is_empty()
            && self.dropped.is_empty()
    }

    /// Empties every list while keeping the allocations, so one
    /// `RouterOutputs` can serve as a reusable scratch buffer across
    /// routers and cycles ([`RouterNode::step`] calls this on entry).
    pub fn clear(&mut self) {
        self.flits.clear();
        self.credits.clear();
        self.ejected.clear();
        self.dropped.clear();
    }
}

/// What one fused hot-path step ([`RouterNode::step_hot`]) reports back
/// to the simulator, so the caller needs no follow-up
/// [`RouterNode::occupancy`] / [`RouterNode::is_quiescent`] sweeps.
#[derive(Debug, Clone, Copy)]
pub struct HotStep {
    /// Flits buffered after the step (same value `occupancy()` would
    /// return).
    pub occupancy: usize,
    /// Whether the router ended the step quiescent (same value
    /// `is_quiescent()` would return).
    pub quiescent: bool,
    /// Busy-VC tag mask: bit `v` set means internal VC `v` was possibly
    /// non-idle at the start of the step (a sound superset). Routers
    /// that don't track per-VC masks report `u64::MAX` (all unknown).
    pub busy_vcs: u64,
}

/// A wormhole-switched virtual-channel router that the mesh simulator
/// can drive cycle by cycle.
///
/// # Contract
///
/// * `deliver_flit` / `deliver_credit` are called for everything arriving
///   at the start of a cycle, then `try_inject` for local traffic, then
///   `step` exactly once.
/// * `step` must be deterministic given the delivered inputs and the
///   context RNG.
/// * Flits emitted from `step` arrive at the neighbour after the link
///   delay; credits likewise.
/// * Flit buffers live outside the router, in the network-wide
///   [`crate::FlitSlab`] (ISSUE 10): every method that touches buffered
///   flits receives this router's [`SlabWindow`] (or a read-only
///   [`SlabView`]), whose ring `r` holds internal VC `r`'s flits. The
///   ring layout must match [`RouterNode::ring_capacities`].
pub trait RouterNode {
    /// This router's mesh position.
    fn coord(&self) -> Coord;

    /// The configuration the router was built with.
    fn config(&self) -> &RouterConfig;

    /// Fixed slab ring capacity of every internal VC, in VC-id order:
    /// the nominal buffer depth plus the poison-tail credit slop. The
    /// simulator sizes the network [`crate::FlitSlab`] from this once at
    /// construction; fault reconfiguration never changes it.
    fn ring_capacities(&self) -> Vec<u32>;

    /// Descriptors of the input VCs reachable through the link arriving
    /// on side `dir` (what the upstream router runs VA against). For
    /// `Direction::Local` this is the injection VC set.
    fn vcs_on_link(&self, dir: Direction) -> &[VcDescriptor];

    /// Accepts a flit from the upstream neighbour on side `from` into
    /// input VC `vc` (or hands it to Early Ejection when `vc == EJECT_VC`).
    fn deliver_flit(&mut self, slab: &mut SlabWindow<'_>, from: Direction, vc: u8, flit: Flit);

    /// Accepts a credit returned by the downstream neighbour reached
    /// through output `output`.
    fn deliver_credit(&mut self, output: Direction, credit: Credit);

    /// Offers one locally generated flit to the router. Returns `false`
    /// when no admissible injection VC has space this cycle (the network
    /// interface will retry).
    fn try_inject(
        &mut self,
        slab: &mut SlabWindow<'_>,
        flit: Flit,
        ctx: &mut StepContext<'_>,
    ) -> bool;

    /// Advances the router one cycle: VA, SA and switch traversal.
    ///
    /// Everything leaving the router this cycle is written into `out`,
    /// a caller-owned scratch buffer that the router clears on entry —
    /// the steady-state hot loop performs no heap allocation this way.
    fn step(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        out: &mut RouterOutputs,
    );

    /// Data-oriented variant of [`RouterNode::step`] for the simulator's
    /// `Soa` kernel: advances the router exactly one cycle with
    /// bit-identical results, but is free to fuse its internal scans
    /// (e.g. compute a busy-VC mask once and feed every pipeline stage
    /// from it) and must report end-of-step occupancy and quiescence so
    /// the caller performs no extra sweeps. The default implementation
    /// simply wraps `step`.
    fn step_hot(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        out: &mut RouterOutputs,
    ) -> HotStep {
        self.step(ctx, slab, out);
        HotStep { occupancy: self.occupancy(), quiescent: self.is_quiescent(), busy_vcs: u64::MAX }
    }

    /// Issues cache prefetches for the state the next [`RouterNode::step_hot`]
    /// call will touch. Strictly read-only and semantically a no-op —
    /// the `Soa` kernel calls it a few routers ahead of the serial step
    /// sweep so the (otherwise dependent) cache misses of consecutive
    /// routers overlap. The default does nothing.
    fn warm_hot(&self, _slab: &SlabView<'_>) {}

    /// Whether the router holds no flits, no pending emissions and no
    /// non-idle pipeline state, so that a [`RouterNode::step`] call
    /// would change nothing except the clocked-cycle counter and
    /// consume no context RNG. The simulator's active-router scheduler
    /// replaces `step` with [`RouterNode::tick_idle`] for such routers.
    fn is_quiescent(&self) -> bool;

    /// Accounts one clocked cycle without running the pipeline — the
    /// leakage-energy bookkeeping a skipped quiescent router still
    /// needs. Must leave the router bit-identical to a full `step` on
    /// a quiescent router.
    fn tick_idle(&mut self);

    /// Current operational status (consumed by neighbours next cycle).
    fn status(&self) -> NodeStatus;

    /// Injects a hardware fault (§4). May be called mid-run; the
    /// simulator follows up with [`RouterNode::purge_faulted`] so
    /// in-flight flits caught at the afflicted component are discarded
    /// or fragmented per §4.1.
    fn inject_fault(&mut self, fault: ComponentFault);

    /// Repairs every active fault: restores module health, RC, SA and
    /// all VC capacities to their built state. The simulator re-injects
    /// whatever faults remain scheduled as active afterwards.
    fn clear_faults(&mut self);

    /// Post-fault cleanup for mid-run injection: aborts streams wedged
    /// in now-disabled VCs (discarding their buffered flits, crediting
    /// the upstream router, and emitting poison tails for fragments
    /// whose head already moved on — see [`Flit::poison`]).
    fn purge_faulted(&mut self, slab: &mut SlabWindow<'_>);

    /// Re-synchronizes this router's view of the downstream VCs behind
    /// output `dir` after the neighbour republished its operational
    /// state (the §4.1 handshake): adopts the new descriptors and
    /// clamps credit/free state, without resetting arbiters.
    fn resync_output(&mut self, slab: &mut SlabWindow<'_>, dir: Direction, descs: &[VcDescriptor]);

    /// Discards all state of the input VCs fed by the link arriving on
    /// side `from` — buffered flits, stream state, drop latches —
    /// without returning upstream credits. Used when a repaired
    /// neighbour's output port toward this router is rebuilt from
    /// scratch, so both ends restart from an empty, fully credited
    /// link.
    fn reset_input_link(&mut self, slab: &mut SlabWindow<'_>, from: Direction);

    /// Cumulative activity counters for the energy model.
    fn counters(&self) -> &ActivityCounters;

    /// Cumulative switch-allocation contention counters (Fig 3).
    fn contention(&self) -> &ContentionCounters;

    /// Number of flits currently buffered (for drain detection).
    fn occupancy(&self) -> usize;

    /// A point-in-time snapshot of every input VC, for telemetry probes
    /// and stall post-mortems.
    fn vc_snapshots(&self, slab: &SlabView<'_>) -> Vec<VcSnapshot>;

    /// Remaining credits per downstream VC, keyed by output direction.
    /// Only mesh outputs that physically exist on this router appear.
    fn credit_map(&self) -> Vec<(Direction, Vec<u8>)>;

    /// A complete audit snapshot (credit books, VC states, latched
    /// flits) for the runtime invariant checker. Called only when
    /// auditing is enabled.
    fn audit_probe(&self, slab: &SlabView<'_>) -> AuditProbe;
}

/// The six fundamental router components of §4.1's fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultComponent {
    /// Routing Computation unit (per-packet, message-centric,
    /// non-critical): recoverable by Double Routing.
    RoutingComputation,
    /// A VC buffer (per-flit, message-centric): recoverable through the
    /// bypass path / Virtual Queuing.
    VcBuffer,
    /// Virtual-channel allocator (per-packet, router-centric): forces
    /// module isolation.
    VaArbiter,
    /// Switch allocator (per-flit, router-centric): recoverable by
    /// offloading onto idle VA arbiters.
    SaArbiter,
    /// Crossbar (per-flit, critical pathway): forces module isolation.
    Crossbar,
    /// Input MUX/DEMUX (per-flit, critical pathway): forces module
    /// isolation.
    MuxDemux,
}

impl FaultComponent {
    /// All components, in Table 3 order.
    pub const ALL: [FaultComponent; 6] = [
        FaultComponent::RoutingComputation,
        FaultComponent::VcBuffer,
        FaultComponent::VaArbiter,
        FaultComponent::SaArbiter,
        FaultComponent::Crossbar,
        FaultComponent::MuxDemux,
    ];
}

/// A permanent hard fault affecting one component instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentFault {
    /// Which component failed.
    pub component: FaultComponent,
    /// Which RoCo module the instance belongs to (Row = X, Column = Y).
    /// Generic and Path-Sensitive routers ignore this: any hard fault
    /// blocks the whole node (§4.1).
    pub axis: Axis,
    /// For [`FaultComponent::VcBuffer`], the index of the failed VC
    /// within the afflicted module's buffer pool; ignored otherwise.
    pub vc: u8,
}

impl ComponentFault {
    /// A fault in `component` within the module serving `axis`.
    pub fn new(component: FaultComponent, axis: Axis) -> Self {
        ComponentFault { component, axis, vc: 0 }
    }

    /// A buffer fault targeting a specific VC.
    pub fn buffer(axis: Axis, vc: u8) -> Self {
        ComponentFault { component: FaultComponent::VcBuffer, axis, vc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn healthy_status_serves_everything() {
        let s = NodeStatus::healthy();
        assert!(!s.node_dead());
        for d in Direction::ALL {
            assert!(s.can_serve_output(d));
        }
    }

    #[test]
    fn row_dead_blocks_only_x_outputs() {
        let s = NodeStatus { row: ModuleHealth::Dead, ..NodeStatus::healthy() };
        assert!(!s.can_serve_output(Direction::East));
        assert!(!s.can_serve_output(Direction::West));
        assert!(s.can_serve_output(Direction::North));
        assert!(s.can_serve_output(Direction::South));
        assert!(s.can_serve_output(Direction::Local), "early ejection survives module loss");
        assert!(!s.node_dead());
    }

    #[test]
    fn node_dead_blocks_ejection_too() {
        let s = NodeStatus { row: ModuleHealth::Dead, col: ModuleHealth::Dead, rc_ok: true };
        assert!(s.node_dead());
        assert!(!s.can_serve_output(Direction::Local));
    }

    #[test]
    fn degraded_module_is_operational() {
        assert!(ModuleHealth::Degraded.is_operational());
        assert!(ModuleHealth::Healthy.is_operational());
        assert!(!ModuleHealth::Dead.is_operational());
    }

    #[test]
    fn step_context_neighbor_lookup() {
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ctx = StepContext::new(5, &mut rng);
        assert_eq!(ctx.cycle, 5);
        assert_eq!(ctx.neighbor_status(Direction::North), None);
        ctx.neighbors[Direction::East.index()] = Some(NodeStatus::healthy());
        assert!(ctx.neighbor_status(Direction::East).is_some());
    }

    #[test]
    #[should_panic(expected = "no neighbour status")]
    fn step_context_rejects_local() {
        let mut rng = SmallRng::seed_from_u64(0);
        let ctx = StepContext::new(0, &mut rng);
        let _ = ctx.neighbor_status(Direction::Local);
    }

    #[test]
    fn outputs_empty_check() {
        let o = RouterOutputs::new();
        assert!(o.is_empty());
    }

    #[test]
    fn router_rng_streams_are_deterministic_and_distinct() {
        use rand::Rng;
        let draw =
            |seed, router, cycle, stream| router_rng(seed, router, cycle, stream).gen::<u64>();
        // Same counters ⇒ same stream, independent of call order.
        assert_eq!(draw(7, 3, 100, RNG_STREAM_STEP), draw(7, 3, 100, RNG_STREAM_STEP));
        // Any counter change ⇒ a different stream.
        let base = draw(7, 3, 100, RNG_STREAM_STEP);
        assert_ne!(base, draw(8, 3, 100, RNG_STREAM_STEP));
        assert_ne!(base, draw(7, 4, 100, RNG_STREAM_STEP));
        assert_ne!(base, draw(7, 3, 101, RNG_STREAM_STEP));
        assert_ne!(base, draw(7, 3, 100, RNG_STREAM_INJECT));
        // Adjacent (router, cycle) pairs must not collide via linear
        // cancellation: (r, c) vs (r+1, c-1).
        assert_ne!(draw(7, 3, 100, RNG_STREAM_STEP), draw(7, 4, 99, RNG_STREAM_STEP));
    }

    #[test]
    fn fault_constructors() {
        let f = ComponentFault::new(FaultComponent::Crossbar, Axis::Y);
        assert_eq!(f.component, FaultComponent::Crossbar);
        assert_eq!(f.axis, Axis::Y);
        let b = ComponentFault::buffer(Axis::X, 2);
        assert_eq!(b.component, FaultComponent::VcBuffer);
        assert_eq!(b.vc, 2);
    }
}
