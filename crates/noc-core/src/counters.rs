//! Activity and contention counters.
//!
//! Routers increment these as they operate; the energy model
//! (`noc-power`) multiplies activity counts by per-component energies
//! (§5.2's back-annotation flow), and the contention counters reproduce
//! the Fig 3 measurement.

use serde::{Deserialize, Serialize};

/// Counts of energy-relevant micro-operations performed by one router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Flits written into VC buffers.
    pub buffer_writes: u64,
    /// Flits read out of VC buffers (on switch traversal or ejection).
    pub buffer_reads: u64,
    /// Flits that traversed a crossbar.
    pub crossbar_traversals: u64,
    /// First-stage (per input) VA arbitration operations.
    pub va_local_arbs: u64,
    /// Second-stage (per output VC) VA arbitration operations.
    pub va_global_arbs: u64,
    /// First-stage (per input port) SA arbitration operations.
    pub sa_local_arbs: u64,
    /// Second-stage (per output port / mirror) SA arbitration operations.
    pub sa_global_arbs: u64,
    /// Flits placed onto output links.
    pub link_traversals: u64,
    /// Route computations (look-ahead or current-node).
    pub rc_computations: u64,
    /// Flits ejected without SA/ST via Early Ejection (RoCo/PS only).
    pub early_ejections: u64,
    /// Cycles this router was clocked.
    pub cycles: u64,
    /// Packets that wedged permanently at this router because a fault
    /// made their route unserviceable (baseline blocking behaviour).
    pub blocked_packets: u64,
    /// High-water mark of flits buffered across all of this router's VCs
    /// at any single cycle boundary (merged with `max`, not `+`).
    pub occupancy_high_water: u64,
    /// VA requests that failed to obtain a downstream VC: either no
    /// admissible free VC existed, or the request lost second-stage
    /// arbitration to a competing input.
    pub va_failures: u64,
    /// Cycles in which at least one Active VC held flits but could not
    /// bid for the switch because its downstream VC had zero credits.
    pub credit_stall_cycles: u64,
}

impl ActivityCounters {
    /// Empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `other` into `self` (used when aggregating a whole network).
    pub fn merge(&mut self, other: &ActivityCounters) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.crossbar_traversals += other.crossbar_traversals;
        self.va_local_arbs += other.va_local_arbs;
        self.va_global_arbs += other.va_global_arbs;
        self.sa_local_arbs += other.sa_local_arbs;
        self.sa_global_arbs += other.sa_global_arbs;
        self.link_traversals += other.link_traversals;
        self.rc_computations += other.rc_computations;
        self.early_ejections += other.early_ejections;
        self.cycles += other.cycles;
        self.blocked_packets += other.blocked_packets;
        self.occupancy_high_water = self.occupancy_high_water.max(other.occupancy_high_water);
        self.va_failures += other.va_failures;
        self.credit_stall_cycles += other.credit_stall_cycles;
    }
}

/// Switch-allocation contention, classified by the requested output axis
/// (X = row inputs, Y = column inputs) as in Fig 3.
///
/// A *request* is one VC bidding for crossbar passage in one cycle; the
/// request is *blocked* when it loses arbitration to a competing request
/// (rather than stalling for credits).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentionCounters {
    /// SA requests for X-axis (East/West) outputs.
    pub x_requests: u64,
    /// X-axis requests that lost arbitration.
    pub x_blocked: u64,
    /// SA requests for Y-axis (North/South) outputs.
    pub y_requests: u64,
    /// Y-axis requests that lost arbitration.
    pub y_blocked: u64,
}

impl ContentionCounters {
    /// Empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &ContentionCounters) {
        self.x_requests += other.x_requests;
        self.x_blocked += other.x_blocked;
        self.y_requests += other.y_requests;
        self.y_blocked += other.y_blocked;
    }

    /// Fraction of X-axis requests that lost arbitration (`None` when no
    /// requests were observed).
    pub fn x_contention_probability(&self) -> Option<f64> {
        (self.x_requests > 0).then(|| self.x_blocked as f64 / self.x_requests as f64)
    }

    /// Fraction of Y-axis requests that lost arbitration.
    pub fn y_contention_probability(&self) -> Option<f64> {
        (self.y_requests > 0).then(|| self.y_blocked as f64 / self.y_requests as f64)
    }

    /// Contention over all requests regardless of axis.
    pub fn total_contention_probability(&self) -> Option<f64> {
        let requests = self.x_requests + self.y_requests;
        (requests > 0).then(|| (self.x_blocked + self.y_blocked) as f64 / requests as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_fields() {
        let mut a = ActivityCounters { buffer_writes: 1, cycles: 10, ..Default::default() };
        let b = ActivityCounters {
            buffer_writes: 2,
            buffer_reads: 3,
            crossbar_traversals: 4,
            va_local_arbs: 5,
            va_global_arbs: 6,
            sa_local_arbs: 7,
            sa_global_arbs: 8,
            link_traversals: 9,
            rc_computations: 10,
            early_ejections: 11,
            cycles: 12,
            blocked_packets: 0,
            occupancy_high_water: 13,
            va_failures: 14,
            credit_stall_cycles: 15,
        };
        a.merge(&b);
        assert_eq!(a.buffer_writes, 3);
        assert_eq!(a.buffer_reads, 3);
        assert_eq!(a.crossbar_traversals, 4);
        assert_eq!(a.va_local_arbs, 5);
        assert_eq!(a.va_global_arbs, 6);
        assert_eq!(a.sa_local_arbs, 7);
        assert_eq!(a.sa_global_arbs, 8);
        assert_eq!(a.link_traversals, 9);
        assert_eq!(a.rc_computations, 10);
        assert_eq!(a.early_ejections, 11);
        assert_eq!(a.cycles, 22);
        assert_eq!(a.va_failures, 14);
        assert_eq!(a.credit_stall_cycles, 15);
    }

    #[test]
    fn merge_takes_the_larger_high_water_mark() {
        let mut a = ActivityCounters { occupancy_high_water: 7, ..Default::default() };
        a.merge(&ActivityCounters { occupancy_high_water: 4, ..Default::default() });
        assert_eq!(a.occupancy_high_water, 7, "merging a smaller mark keeps ours");
        a.merge(&ActivityCounters { occupancy_high_water: 12, ..Default::default() });
        assert_eq!(a.occupancy_high_water, 12, "merging a larger mark adopts it");
    }

    #[test]
    fn contention_probabilities() {
        let c = ContentionCounters { x_requests: 10, x_blocked: 3, y_requests: 0, y_blocked: 0 };
        assert_eq!(c.x_contention_probability(), Some(0.3));
        assert_eq!(c.y_contention_probability(), None);
        assert_eq!(c.total_contention_probability(), Some(0.3));
    }

    #[test]
    fn contention_merge() {
        let mut a = ContentionCounters { x_requests: 1, x_blocked: 1, y_requests: 2, y_blocked: 0 };
        a.merge(&ContentionCounters { x_requests: 3, x_blocked: 0, y_requests: 2, y_blocked: 2 });
        assert_eq!(a.x_requests, 4);
        assert_eq!(a.x_blocked, 1);
        assert_eq!(a.y_requests, 4);
        assert_eq!(a.y_blocked, 2);
        assert_eq!(a.total_contention_probability(), Some(3.0 / 8.0));
    }

    #[test]
    fn empty_counters_report_no_probability() {
        let c = ContentionCounters::new();
        assert_eq!(c.x_contention_probability(), None);
        assert_eq!(c.total_contention_probability(), None);
    }
}
