//! Router and mesh configuration following the paper's §5.4 setup.

use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three router microarchitectures evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterKind {
    /// Generic 2-stage 5-port virtual-channel router with a monolithic
    /// 5×5 crossbar (Fig 1a).
    Generic,
    /// Path-Sensitive router of Kim et al., DAC 2005: four quadrant path
    /// sets and a 4×4 decomposed crossbar.
    PathSensitive,
    /// The paper's Row-Column decoupled router: independent Row and
    /// Column modules with 2×2 crossbars (Fig 1b).
    RoCo,
}

impl RouterKind {
    /// All three architectures, in the paper's presentation order.
    pub const ALL: [RouterKind; 3] =
        [RouterKind::Generic, RouterKind::PathSensitive, RouterKind::RoCo];
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouterKind::Generic => "generic",
            RouterKind::PathSensitive => "path-sensitive",
            RouterKind::RoCo => "roco",
        };
        f.write_str(s)
    }
}

/// The three routing algorithms evaluated by the paper (§5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Deterministic dimension-order (XY) routing.
    Xy,
    /// Oblivious XY-YX: each packet picks XY or YX with equal probability
    /// at injection.
    XyYx,
    /// Minimal adaptive routing under the west-first turn model.
    Adaptive,
    /// Minimal adaptive routing under the odd-even turn model
    /// (extension: used by the ablation study; not part of the paper's
    /// three-algorithm comparison).
    AdaptiveOddEven,
}

impl RoutingKind {
    /// The paper's three algorithms, in presentation order (the
    /// odd-even extension is excluded).
    pub const ALL: [RoutingKind; 3] = [RoutingKind::Xy, RoutingKind::XyYx, RoutingKind::Adaptive];
}

impl fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RoutingKind::Xy => "xy",
            RoutingKind::XyYx => "xy-yx",
            RoutingKind::Adaptive => "adaptive",
            RoutingKind::AdaptiveOddEven => "adaptive-odd-even",
        };
        f.write_str(s)
    }
}

/// Per-router configuration.
///
/// The paper's fairness setup (§5.4) gives every router 60 flits of
/// buffering: the generic router has 5 ports × 3 VCs × 4-flit buffers,
/// while the 4-port Path-Sensitive and RoCo routers have 3 VCs per port
/// with 5-flit buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Microarchitecture.
    pub router: RouterKind,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// Virtual channels per port (paper: 3).
    pub vcs_per_port: u8,
    /// Flit slots per VC buffer (paper: 4 generic, 5 PS/RoCo).
    pub buffer_depth: u8,
    /// Flits per packet (paper: 4).
    pub num_flits: u16,
    /// Flit width in bits (paper: 128); only the energy model reads this.
    pub flit_bits: u16,
    /// Whether the RoCo router uses the Mirroring-Effect switch
    /// allocator (§3.3). `false` replaces it with a plain input-first
    /// separable allocator per module — the ablation baseline.
    pub mirror_allocator: bool,
    /// Whether a head may bid for the switch in the same cycle its VA
    /// succeeded ("speculative path selection", §3.1). `false` models a
    /// classic 3-stage pipeline where SA follows VA by a cycle — the
    /// ablation baseline.
    pub speculative_sa: bool,
    /// Cycles a baseline router lets a fault-blocked packet wedge an
    /// input VC before the watchdog discards it (default 20). Set to
    /// `u64::MAX` to disable the watchdog and let blocked packets wedge
    /// forever, as the paper describes the non-recycling baselines —
    /// used by the stall-detector and post-mortem tests.
    #[serde(default = "default_block_timeout")]
    pub block_timeout: u64,
}

/// Serde default for [`RouterConfig::block_timeout`].
fn default_block_timeout() -> u64 {
    20
}

impl RouterConfig {
    /// The paper's configuration for `router` under `routing`.
    pub fn paper(router: RouterKind, routing: RoutingKind) -> Self {
        let buffer_depth = match router {
            RouterKind::Generic => 4,
            RouterKind::PathSensitive | RouterKind::RoCo => 5,
        };
        RouterConfig {
            router,
            routing,
            vcs_per_port: 3,
            buffer_depth,
            num_flits: 4,
            flit_bits: 128,
            mirror_allocator: true,
            speculative_sa: true,
            block_timeout: default_block_timeout(),
        }
    }

    /// Number of physical input port sets (5 generic, 4 otherwise).
    pub fn num_ports(&self) -> u8 {
        match self.router {
            RouterKind::Generic => 5,
            RouterKind::PathSensitive | RouterKind::RoCo => 4,
        }
    }

    /// Total buffer capacity of one router in flits (paper: 60 for all).
    pub fn total_buffer_flits(&self) -> u32 {
        self.num_ports() as u32 * self.vcs_per_port as u32 * self.buffer_depth as u32
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a field is zero or out of its
    /// supported range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.vcs_per_port == 0 {
            return Err(ConfigError::new("vcs_per_port must be at least 1"));
        }
        if self.buffer_depth == 0 {
            return Err(ConfigError::new("buffer_depth must be at least 1"));
        }
        if self.num_flits == 0 {
            return Err(ConfigError::new("num_flits must be at least 1"));
        }
        if self.flit_bits == 0 {
            return Err(ConfigError::new("flit_bits must be at least 1"));
        }
        if self.router == RouterKind::RoCo && self.vcs_per_port != 3 {
            return Err(ConfigError::new(
                "the RoCo router's Table-1 VC configuration requires exactly 3 VCs per path set",
            ));
        }
        Ok(())
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig::paper(RouterKind::RoCo, RoutingKind::Xy)
    }
}

/// Mesh dimensions (paper: 8×8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Number of columns.
    pub width: u16,
    /// Number of rows.
    pub height: u16,
}

impl MeshConfig {
    /// Creates a mesh configuration.
    pub const fn new(width: u16, height: u16) -> Self {
        MeshConfig { width, height }
    }

    /// Total node count.
    pub fn nodes(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for meshes smaller than 2×2 (the routing
    /// algorithms assume at least two nodes in each dimension).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.width < 2 || self.height < 2 {
            return Err(ConfigError::new("mesh must be at least 2x2"));
        }
        Ok(())
    }
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig::new(8, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_all_have_sixty_flit_buffers() {
        for router in RouterKind::ALL {
            for routing in RoutingKind::ALL {
                let cfg = RouterConfig::paper(router, routing);
                assert_eq!(cfg.total_buffer_flits(), 60, "{router} under {routing}");
                cfg.validate().expect("paper config validates");
            }
        }
    }

    #[test]
    fn generic_has_five_ports_others_four() {
        assert_eq!(RouterConfig::paper(RouterKind::Generic, RoutingKind::Xy).num_ports(), 5);
        assert_eq!(RouterConfig::paper(RouterKind::PathSensitive, RoutingKind::Xy).num_ports(), 4);
        assert_eq!(RouterConfig::paper(RouterKind::RoCo, RoutingKind::Xy).num_ports(), 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = RouterConfig { vcs_per_port: 0, ..Default::default() };
        assert!(cfg.validate().is_err());

        let cfg = RouterConfig { buffer_depth: 0, ..Default::default() };
        assert!(cfg.validate().is_err());

        let cfg = RouterConfig { num_flits: 0, ..Default::default() };
        assert!(cfg.validate().is_err());

        let mut cfg = RouterConfig::paper(RouterKind::RoCo, RoutingKind::Xy);
        cfg.vcs_per_port = 4;
        assert!(cfg.validate().is_err(), "RoCo requires exactly 3 VCs per path set");

        let mut cfg = RouterConfig::paper(RouterKind::Generic, RoutingKind::Xy);
        cfg.vcs_per_port = 4;
        assert!(cfg.validate().is_ok(), "generic router accepts other VC counts");
    }

    #[test]
    fn mesh_validation() {
        assert!(MeshConfig::new(8, 8).validate().is_ok());
        assert!(MeshConfig::new(1, 8).validate().is_err());
        assert!(MeshConfig::new(8, 1).validate().is_err());
        assert_eq!(MeshConfig::default().nodes(), 64);
    }

    #[test]
    fn display_names() {
        assert_eq!(RouterKind::Generic.to_string(), "generic");
        assert_eq!(RouterKind::PathSensitive.to_string(), "path-sensitive");
        assert_eq!(RouterKind::RoCo.to_string(), "roco");
        assert_eq!(RoutingKind::Xy.to_string(), "xy");
        assert_eq!(RoutingKind::XyYx.to_string(), "xy-yx");
        assert_eq!(RoutingKind::Adaptive.to_string(), "adaptive");
    }
}
