//! Wake-set bitsets for the simulator's sleep/wake router scheduling.
//!
//! The network keeps one "awake" bit per router; a router whose bit is
//! clear is known-quiescent and may be skipped entirely by the cycle
//! kernels. [`WakeSet`] packs those bits into `u64` words so a 1024-node
//! mesh is a 16-word scan instead of a 1024-byte one, and awake indices
//! are recovered with `trailing_zeros` rather than a per-element branch.
//! [`WakeView`] is the borrowed, word-aligned window the parallel
//! kernel hands each shard: because shard boundaries are rounded to a
//! word multiple, two threads never write the same word.
//!
//! Invariant: bits at positions `>= len` are always zero, so popcounts
//! and word scans never need a tail mask.

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-length bitset of router wake flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeSet {
    words: Vec<u64>,
    len: usize,
}

/// Number of words needed for `len` bits.
fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl WakeSet {
    /// A set of `len` routers, all awake (the simulator's start state:
    /// every router must step at least once to discover quiescence).
    pub fn all_awake(len: usize) -> Self {
        let mut words = vec![u64::MAX; words_for(len)];
        if let Some(last) = words.last_mut() {
            let tail = len % WORD_BITS;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        WakeSet { words, len }
    }

    /// A set of `len` routers, all asleep.
    pub fn all_asleep(len: usize) -> Self {
        WakeSet { words: vec![0; words_for(len)], len }
    }

    /// Number of routers tracked (bit length, not words).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set tracks zero routers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Marks router `i` awake.
    #[inline]
    pub fn wake(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Marks router `i` asleep.
    #[inline]
    pub fn sleep(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Sets router `i`'s flag from a bool (bridge for code that used to
    /// assign into a `Vec<bool>`).
    #[inline]
    pub fn set(&mut self, i: usize, awake: bool) {
        if awake {
            self.wake(i);
        } else {
            self.sleep(i);
        }
    }

    /// True when router `i` is awake.
    #[inline]
    pub fn is_awake(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 != 0
    }

    /// Number of awake routers (word-wise popcount).
    pub fn count_awake(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of storage words holding at least one awake bit — the
    /// profiler's wake-word occupancy gauge.
    pub fn occupied_words(&self) -> usize {
        self.words.iter().filter(|&&w| w != 0).count()
    }

    /// The backing words (low bit of word 0 is router 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Copy of word `w`; kernels snapshot a word before iterating it so
    /// `sleep` calls on the current word don't perturb the scan.
    #[inline]
    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    /// Awake indices in ascending order via per-word `trailing_zeros`.
    pub fn iter(&self) -> WakeIter<'_> {
        WakeIter { words: &self.words, word: 0, bits: self.words.first().copied().unwrap_or(0) }
    }

    /// Word-aligned mutable windows of `chunk_bits` bits each (the last
    /// window may be shorter). `chunk_bits` must be a word multiple.
    pub fn views_mut(&mut self, chunk_bits: usize) -> impl Iterator<Item = WakeView<'_>> {
        assert!(chunk_bits > 0 && chunk_bits % WORD_BITS == 0, "chunk must be a word multiple");
        let len = self.len;
        self.words.chunks_mut(chunk_bits / WORD_BITS).enumerate().map(move |(k, words)| {
            let base = k * chunk_bits;
            WakeView { words, len: chunk_bits.min(len - base) }
        })
    }
}

/// Ascending iterator over awake indices.
#[derive(Debug)]
pub struct WakeIter<'a> {
    words: &'a [u64],
    word: usize,
    bits: u64,
}

impl Iterator for WakeIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.word];
        }
        let bit = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.word * WORD_BITS + bit)
    }
}

/// A borrowed, word-aligned window into a [`WakeSet`], indexed by
/// shard-local router offsets. Handed to parallel-kernel shards so each
/// owns its words outright.
#[derive(Debug)]
pub struct WakeView<'a> {
    words: &'a mut [u64],
    len: usize,
}

impl WakeView<'_> {
    /// Number of routers in this window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the window covers zero routers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when local router `i` is awake.
    #[inline]
    pub fn is_awake(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 != 0
    }

    /// Sets local router `i`'s flag.
    #[inline]
    pub fn set(&mut self, i: usize, awake: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if awake {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — cheap deterministic bit soup for property tests.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Reference model: the `Vec<bool>` sweep the simulator used before.
    fn model_iter(model: &[bool]) -> Vec<usize> {
        model.iter().enumerate().filter(|(_, &a)| a).map(|(i, _)| i).collect()
    }

    #[test]
    fn all_awake_matches_dense_model() {
        for len in [0, 1, 63, 64, 65, 100, 127, 128, 129, 1024] {
            let set = WakeSet::all_awake(len);
            assert_eq!(set.len(), len);
            assert_eq!(set.count_awake(), len, "len {len}");
            assert_eq!(set.iter().collect::<Vec<_>>(), (0..len).collect::<Vec<_>>());
            // Invariant: no bits above `len` (popcount already proves it,
            // but check the raw tail word too).
            if len % 64 != 0 {
                assert_eq!(set.words().last().unwrap() >> (len % 64), 0);
            }
        }
    }

    #[test]
    fn random_patterns_match_vec_bool_sweep() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for len in [1usize, 5, 63, 64, 65, 100, 127, 128, 129, 300, 1000] {
            for _round in 0..20 {
                let mut set = WakeSet::all_asleep(len);
                let mut model = vec![false; len];
                // Random interleaving of wakes and sleeps.
                for _ in 0..2 * len {
                    let r = xorshift(&mut state);
                    let i = (r as usize >> 8) % len;
                    let awake = r & 1 == 0;
                    set.set(i, awake);
                    model[i] = awake;
                }
                assert_eq!(
                    set.iter().collect::<Vec<_>>(),
                    model_iter(&model),
                    "iteration order diverged from Vec<bool> at len {len}"
                );
                assert_eq!(set.count_awake(), model.iter().filter(|&&a| a).count());
                for (i, &awake) in model.iter().enumerate() {
                    assert_eq!(set.is_awake(i), awake, "membership at {i}, len {len}");
                }
            }
        }
    }

    #[test]
    fn partial_last_word_edges() {
        // Lengths straddling the word boundary: only in-range bits may
        // ever be set, and waking the last router works at every length.
        for len in [100usize, 127, 128, 129] {
            let mut set = WakeSet::all_asleep(len);
            set.wake(len - 1);
            assert!(set.is_awake(len - 1));
            assert_eq!(set.count_awake(), 1);
            assert_eq!(set.iter().collect::<Vec<_>>(), vec![len - 1]);
            assert_eq!(set.occupied_words(), 1);
            set.sleep(len - 1);
            assert_eq!(set.count_awake(), 0);
            assert_eq!(set.occupied_words(), 0);
        }
    }

    #[test]
    fn wake_is_idempotent_and_sleep_is_precise() {
        let mut set = WakeSet::all_asleep(130);
        set.wake(64);
        set.wake(64);
        set.wake(65);
        assert_eq!(set.count_awake(), 2);
        set.sleep(64);
        assert!(!set.is_awake(64));
        assert!(set.is_awake(65));
    }

    #[test]
    fn views_split_on_word_boundaries() {
        let mut set = WakeSet::all_asleep(200);
        set.wake(0);
        set.wake(63);
        set.wake(64);
        set.wake(199);
        let mut views: Vec<WakeView<'_>> = set.views_mut(128).collect();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].len(), 128);
        assert_eq!(views[1].len(), 72);
        assert!(views[0].is_awake(0));
        assert!(views[0].is_awake(63));
        assert!(views[0].is_awake(64));
        assert!(views[1].is_awake(199 - 128));
        // Shard-local writes land at the right global position.
        views[1].set(0, true);
        views[0].set(63, false);
        drop(views);
        assert!(set.is_awake(128));
        assert!(!set.is_awake(63));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 64, 128, 199]);
    }

    #[test]
    fn occupied_words_counts_nonzero_words() {
        let mut set = WakeSet::all_asleep(256);
        assert_eq!(set.occupied_words(), 0);
        set.wake(0);
        set.wake(1);
        set.wake(255);
        assert_eq!(set.occupied_words(), 2);
        assert_eq!(set.words().len(), 4);
    }
}
