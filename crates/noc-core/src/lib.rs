//! # noc-core
//!
//! Shared data model for the RoCo (Row-Column decoupled router, ISCA
//! 2006) reproduction: mesh geometry, flits and packets, virtual-channel
//! classes, router/mesh configuration, the [`RouterNode`] abstraction
//! driven by the cycle-accurate simulator, and activity counters for the
//! energy model.
//!
//! Architecture-specific logic lives elsewhere: arbiters in
//! `noc-arbiter`, routing functions in `noc-routing`, router
//! microarchitectures in `noc-router`, and the network simulator in
//! `noc-sim`.
//!
//! # Examples
//!
//! ```
//! use noc_core::{Coord, Direction, VcClass};
//!
//! // A flit arriving from the West and continuing East is X-dimension
//! // through-traffic, queued in a `dx` buffer by Guided Flit Queuing.
//! let class = VcClass::derive(Direction::West, Direction::East);
//! assert_eq!(class, VcClass::Dx);
//! assert_eq!(Coord::new(0, 0).manhattan_distance(Coord::new(7, 7)), 14);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod counters;
mod error;
mod flit;
mod geometry;
mod mask;
mod node;
mod probe;
mod slab;
mod topology;
mod vc;
mod wake;

pub use config::{MeshConfig, RouterConfig, RouterKind, RoutingKind};
pub use counters::{ActivityCounters, ContentionCounters};
pub use error::ConfigError;
pub use flit::{Cycle, Flit, FlitKind, Packet, PacketId};
pub use geometry::{Axis, AxisOrder, Coord, Direction};
pub use mask::{LinkMask, ReachabilityMap};
pub use node::{
    router_rng, ComponentFault, FaultComponent, HotStep, ModuleHealth, NodeStatus, RouterNode,
    RouterOutputs, StepContext, EJECT_VC, RNG_STREAM_INJECT, RNG_STREAM_STEP,
};
pub use probe::{AuditProbe, CreditBook, LatchedFlit, VcAudit, VcPhase, VcSnapshot};
pub use slab::{FlitSlab, SlabShard, SlabView, SlabWindow};
pub use topology::{
    ChipletTopology, CirculantTopology, MeshTopology, Topology, TopologyConfig, TopologyOps,
    TorusTopology, WRAP_AXIS_ORDER,
};
pub use vc::{Credit, TurnFilter, VcAdmission, VcClass, VcDescriptor, VcRef, VcRequest};
pub use wake::{WakeIter, WakeSet, WakeView};
