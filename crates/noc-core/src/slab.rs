//! Per-network flat flit-slab buffer storage (ISSUE 10).
//!
//! All VC buffers of every router in the network live in **one**
//! contiguous [`Vec<Flit>`], organised as fixed-capacity rings indexed
//! by a precomputed `(router, vc) → slot range` table. A flit hop is an
//! index move plus a wrapping head bump instead of a `VecDeque`
//! operation, and the whole pool is allocated exactly once at
//! construction — the steady-state flit path performs zero heap
//! allocations.
//!
//! # Layout
//!
//! Routers are homogeneous (one [`crate::RouterConfig`] per network), so
//! a single per-router template describes every router's rings:
//!
//! * `base[r]` — offset of ring `r`'s first slot within a router window,
//! * `cap[r]` — ring `r`'s fixed capacity in slots,
//! * `stride` — `Σ cap`, the width of one router's window.
//!
//! Router `i`'s ring `r` occupies slots
//! `[i * stride + base[r], i * stride + base[r] + cap[r])`. The parallel
//! `heads`/`lens` arrays are router-major (`i * rings_per_router + r`),
//! so a shard of routers maps onto disjoint `chunks_mut` slices of all
//! three arrays and the parallel kernel needs no locking.
//!
//! # Ring invariants
//!
//! * `heads[g] < cap[r]` — the head index always lies inside the ring,
//! * `lens[g] <= cap[r]` — a ring never holds more than its capacity,
//! * pushing into a full ring panics (`"flit ring overflow"`): ring
//!   capacities are *fixed* at `nominal + 2` (credit slop for poison
//!   tails), so an overflow is a flow-control bug, never load.
//!
//! Fault reconfiguration (Virtual Queuing shrinking a VC to capacity 1,
//! module isolation zeroing it) changes only the *admission* capacity in
//! the VC descriptors — the slab's physical rings keep their built size,
//! which is what lets a mid-run repair restore the original capacity
//! without reallocating.

use crate::flit::{Flit, PacketId};
use crate::geometry::{Coord, Direction};

/// Filler value for unoccupied slots (never observed by the engine; the
/// ring length bounds every read).
fn filler() -> Flit {
    Flit::poison_tail(PacketId(u64::MAX), Coord::new(0, 0), Coord::new(0, 0), Direction::Local)
}

/// The network-wide flit buffer pool. See the module docs for layout.
#[derive(Debug, Clone)]
pub struct FlitSlab {
    /// All slots, router-major: router `i` owns `[i*stride, (i+1)*stride)`.
    slots: Vec<Flit>,
    /// Ring head indices (offset of the front flit within its ring),
    /// router-major: `i * rings_per_router + r`.
    heads: Vec<u32>,
    /// Ring occupancy counts, router-major like `heads`.
    lens: Vec<u32>,
    /// Per-ring slot offset within a router window (shared template).
    base: Vec<u32>,
    /// Per-ring fixed capacity (shared template).
    cap: Vec<u32>,
    /// Slots per router (`Σ cap`).
    stride: usize,
    /// Rings per router (`cap.len()`).
    rpr: usize,
    /// Number of routers.
    nodes: usize,
}

impl FlitSlab {
    /// Allocates the pool for `nodes` homogeneous routers whose VCs have
    /// the given fixed ring capacities (in internal VC-id order).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `ring_caps` is empty, or any capacity is 0.
    pub fn new(nodes: usize, ring_caps: &[u32]) -> Self {
        assert!(nodes > 0, "a network has at least one router");
        assert!(!ring_caps.is_empty(), "a router has at least one VC ring");
        let mut base = Vec::with_capacity(ring_caps.len());
        let mut off = 0u32;
        for &c in ring_caps {
            assert!(c > 0, "a flit ring needs at least one slot");
            base.push(off);
            off += c;
        }
        let stride = off as usize;
        FlitSlab {
            slots: vec![filler(); nodes * stride],
            heads: vec![0; nodes * ring_caps.len()],
            lens: vec![0; nodes * ring_caps.len()],
            base,
            cap: ring_caps.to_vec(),
            stride,
            rpr: ring_caps.len(),
            nodes,
        }
    }

    /// Mutable window over router `node`'s rings.
    #[inline]
    pub fn window(&mut self, node: usize) -> SlabWindow<'_> {
        let s = node * self.stride;
        let g = node * self.rpr;
        SlabWindow {
            slots: &mut self.slots[s..s + self.stride],
            heads: &mut self.heads[g..g + self.rpr],
            lens: &mut self.lens[g..g + self.rpr],
            base: &self.base,
            cap: &self.cap,
        }
    }

    /// Read-only view over router `node`'s rings.
    #[inline]
    pub fn view(&self, node: usize) -> SlabView<'_> {
        let s = node * self.stride;
        let g = node * self.rpr;
        SlabView {
            slots: &self.slots[s..s + self.stride],
            heads: &self.heads[g..g + self.rpr],
            lens: &self.lens[g..g + self.rpr],
            base: &self.base,
            cap: &self.cap,
        }
    }

    /// Splits the pool into disjoint shards of `routers_per_shard`
    /// consecutive routers each (the last shard may be short), for the
    /// parallel kernel. Allocation-free: the shards borrow directly from
    /// the pool via `chunks_mut`.
    pub fn shards(&mut self, routers_per_shard: usize) -> impl Iterator<Item = SlabShard<'_>> {
        let (stride, rpr) = (self.stride, self.rpr);
        let slot_chunk = routers_per_shard * stride;
        let ring_chunk = routers_per_shard * rpr;
        let base = &self.base[..];
        let cap = &self.cap[..];
        self.slots
            .chunks_mut(slot_chunk.max(1))
            .zip(self.heads.chunks_mut(ring_chunk.max(1)))
            .zip(self.lens.chunks_mut(ring_chunk.max(1)))
            .map(move |((slots, heads), lens)| SlabShard {
                slots,
                heads,
                lens,
                base,
                cap,
                stride,
                rpr,
            })
    }

    /// Number of routers the pool serves.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total number of flit slots in the pool.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Heap footprint of the pool in bytes (slots + ring metadata).
    pub fn footprint_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Flit>()
            + (self.heads.len() + self.lens.len() + self.base.len() + self.cap.len())
                * std::mem::size_of::<u32>()
    }

    /// Total flits currently buffered across every ring (audit
    /// cross-check against the routers' incremental counters).
    pub fn occupied(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// The shared per-router ring-capacity template.
    pub fn ring_caps(&self) -> &[u32] {
        &self.cap
    }

    /// Corrupts a ring head index in place. Only for mutation-style
    /// negative tests that prove the audit layer notices slab
    /// inconsistencies; never call this from simulation code.
    #[doc(hidden)]
    pub fn debug_set_head(&mut self, node: usize, ring: usize, head: u32) {
        self.heads[node * self.rpr + ring] = head;
    }
}

/// Mutable access to one router's rings. All flit-path mutation in the
/// engine goes through this: push at the tail, pop at the head, with
/// wrap-around by compare (never a modulo) on the hot path.
#[derive(Debug)]
pub struct SlabWindow<'a> {
    slots: &'a mut [Flit],
    heads: &'a mut [u32],
    lens: &'a mut [u32],
    base: &'a [u32],
    cap: &'a [u32],
}

impl<'a> SlabWindow<'a> {
    /// Number of flits buffered in ring `r`.
    #[inline]
    pub fn len(&self, r: usize) -> usize {
        self.lens[r] as usize
    }

    /// Whether ring `r` is empty.
    #[inline]
    pub fn is_empty(&self, r: usize) -> bool {
        self.lens[r] == 0
    }

    /// The front (oldest) flit of ring `r`, if any.
    #[inline]
    pub fn front(&self, r: usize) -> Option<&Flit> {
        if self.lens[r] == 0 {
            return None;
        }
        Some(&self.slots[(self.base[r] + self.heads[r]) as usize])
    }

    /// Mutable front of ring `r`, if any (look-ahead route rewrites).
    #[inline]
    pub fn front_mut(&mut self, r: usize) -> Option<&mut Flit> {
        if self.lens[r] == 0 {
            return None;
        }
        Some(&mut self.slots[(self.base[r] + self.heads[r]) as usize])
    }

    /// Appends `flit` at the tail of ring `r`.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full — capacities are fixed at
    /// `nominal + 2`, so this indicates a flow-control bug.
    #[inline]
    pub fn push_back(&mut self, r: usize, flit: Flit) {
        let cap = self.cap[r];
        let len = self.lens[r];
        assert!(len < cap, "flit ring overflow");
        let mut pos = self.heads[r] + len;
        if pos >= cap {
            pos -= cap;
        }
        self.slots[(self.base[r] + pos) as usize] = flit;
        self.lens[r] = len + 1;
    }

    /// Removes and returns the front flit of ring `r`, if any.
    #[inline]
    pub fn pop_front(&mut self, r: usize) -> Option<Flit> {
        let len = self.lens[r];
        if len == 0 {
            return None;
        }
        let head = self.heads[r];
        let f = self.slots[(self.base[r] + head) as usize];
        let next = head + 1;
        self.heads[r] = if next == self.cap[r] { 0 } else { next };
        self.lens[r] = len - 1;
        Some(f)
    }

    /// Iterates ring `r` front-to-back.
    pub fn iter(&self, r: usize) -> impl Iterator<Item = &Flit> {
        ring_iter(self.slots, self.base[r], self.cap[r], self.heads[r], self.lens[r])
    }

    /// A read-only view of the same window.
    #[inline]
    pub fn as_view(&self) -> SlabView<'_> {
        SlabView {
            slots: self.slots,
            heads: self.heads,
            lens: self.lens,
            base: self.base,
            cap: self.cap,
        }
    }
}

/// Read-only access to one router's rings (probes, audits, prefetch).
#[derive(Debug, Clone, Copy)]
pub struct SlabView<'a> {
    slots: &'a [Flit],
    heads: &'a [u32],
    lens: &'a [u32],
    base: &'a [u32],
    cap: &'a [u32],
}

impl<'a> SlabView<'a> {
    /// Number of flits buffered in ring `r`.
    #[inline]
    pub fn len(&self, r: usize) -> usize {
        self.lens[r] as usize
    }

    /// Whether ring `r` is empty.
    #[inline]
    pub fn is_empty(&self, r: usize) -> bool {
        self.lens[r] == 0
    }

    /// The front (oldest) flit of ring `r`, if any.
    #[inline]
    pub fn front(&self, r: usize) -> Option<&Flit> {
        if self.lens[r] == 0 {
            return None;
        }
        Some(&self.slots[(self.base[r] + self.heads[r]) as usize])
    }

    /// Address of the front slot of ring `r` (prefetch target; valid
    /// even when the ring is empty — the slot exists, just unoccupied).
    #[inline]
    pub fn front_ptr(&self, r: usize) -> *const Flit {
        &self.slots[(self.base[r] + self.heads[r]) as usize] as *const Flit
    }

    /// Iterates ring `r` front-to-back.
    pub fn iter(&self, r: usize) -> impl Iterator<Item = &'a Flit> {
        ring_iter(self.slots, self.base[r], self.cap[r], self.heads[r], self.lens[r])
    }

    /// Ring head index of ring `r` (audit invariant: `head < cap`).
    pub fn head(&self, r: usize) -> u32 {
        self.heads[r]
    }

    /// Fixed capacity of ring `r`.
    pub fn ring_cap(&self, r: usize) -> u32 {
        self.cap[r]
    }

    /// Total flits buffered across this router's rings.
    pub fn occupied(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }
}

#[inline]
fn ring_iter(
    slots: &[Flit],
    base: u32,
    cap: u32,
    head: u32,
    len: u32,
) -> impl Iterator<Item = &Flit> {
    (0..len).map(move |i| {
        let mut pos = head + i;
        if pos >= cap {
            pos -= cap;
        }
        &slots[(base + pos) as usize]
    })
}

/// A disjoint slice of the pool covering a contiguous run of routers
/// (one parallel-kernel shard). `Send`, so worker threads can own one.
#[derive(Debug)]
pub struct SlabShard<'a> {
    slots: &'a mut [Flit],
    heads: &'a mut [u32],
    lens: &'a mut [u32],
    base: &'a [u32],
    cap: &'a [u32],
    stride: usize,
    rpr: usize,
}

impl<'a> SlabShard<'a> {
    /// Mutable window over the shard's `local`-th router.
    #[inline]
    pub fn window(&mut self, local: usize) -> SlabWindow<'_> {
        let s = local * self.stride;
        let g = local * self.rpr;
        SlabWindow {
            slots: &mut self.slots[s..s + self.stride],
            heads: &mut self.heads[g..g + self.rpr],
            lens: &mut self.lens[g..g + self.rpr],
            base: self.base,
            cap: self.cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(seq: u16) -> Flit {
        let mut f = filler();
        f.seq = seq;
        f.poison = false;
        f
    }

    #[test]
    fn push_pop_wraps_around() {
        let mut slab = FlitSlab::new(1, &[3]);
        let mut w = slab.window(0);
        for round in 0..5u16 {
            for i in 0..3 {
                w.push_back(0, flit(round * 10 + i));
            }
            assert_eq!(w.len(0), 3);
            for i in 0..3 {
                assert_eq!(w.pop_front(0).unwrap().seq, round * 10 + i);
            }
            assert!(w.is_empty(0));
            assert_eq!(w.pop_front(0), None);
        }
    }

    #[test]
    fn rings_are_independent_across_routers_and_vcs() {
        let mut slab = FlitSlab::new(2, &[2, 4]);
        slab.window(0).push_back(0, flit(1));
        slab.window(0).push_back(1, flit(2));
        slab.window(1).push_back(0, flit(3));
        assert_eq!(slab.occupied(), 3);
        assert_eq!(slab.view(0).front(0).unwrap().seq, 1);
        assert_eq!(slab.view(0).front(1).unwrap().seq, 2);
        assert_eq!(slab.view(1).front(0).unwrap().seq, 3);
        assert!(slab.view(1).is_empty(1));
        assert_eq!(slab.window(1).pop_front(0).unwrap().seq, 3);
        assert_eq!(slab.occupied(), 2);
    }

    #[test]
    fn iter_respects_wrap() {
        let mut slab = FlitSlab::new(1, &[3]);
        let mut w = slab.window(0);
        w.push_back(0, flit(0));
        w.push_back(0, flit(1));
        w.pop_front(0);
        w.push_back(0, flit(2));
        w.push_back(0, flit(3)); // head=1, len=3: occupies slots 1,2,0
        let seqs: Vec<u16> = w.iter(0).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        let seqs: Vec<u16> = slab.view(0).iter(0).map(|f| f.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "flit ring overflow")]
    fn overflow_panics() {
        let mut slab = FlitSlab::new(1, &[2]);
        let mut w = slab.window(0);
        w.push_back(0, flit(0));
        w.push_back(0, flit(1));
        w.push_back(0, flit(2));
    }

    #[test]
    fn shards_partition_the_pool() {
        let mut slab = FlitSlab::new(5, &[2, 3]);
        for node in 0..5 {
            slab.window(node).push_back(1, flit(node as u16));
        }
        let mut seen = Vec::new();
        for (si, mut shard) in slab.shards(2).enumerate() {
            let locals = if si < 2 { 2 } else { 1 };
            for local in 0..locals {
                let w = shard.window(local);
                seen.push(w.front(1).unwrap().seq);
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(slab.occupied(), 5);
    }

    #[test]
    fn footprint_counts_slots_and_metadata() {
        let slab = FlitSlab::new(4, &[2, 2]);
        assert_eq!(slab.slot_count(), 16);
        assert_eq!(slab.nodes(), 4);
        assert_eq!(slab.ring_caps(), &[2, 2]);
        assert!(slab.footprint_bytes() >= 16 * std::mem::size_of::<Flit>());
    }

    #[test]
    fn debug_head_corruption_is_visible() {
        let mut slab = FlitSlab::new(1, &[4]);
        slab.window(0).push_back(0, flit(9));
        slab.debug_set_head(0, 0, 7); // out of range: head >= cap
        assert!(slab.view(0).head(0) >= slab.view(0).ring_cap(0));
    }
}
