//! Flits and packets: the units of wormhole-switched transfer.

use crate::geometry::{AxisOrder, Coord, Direction};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Simulation time in router clock cycles.
pub type Cycle = u64;

/// Globally unique packet identifier, assigned at generation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit; carries the routing header and undergoes VA.
    Head,
    /// Middle flit; follows the wormhole opened by the head.
    Body,
    /// Last flit; releases the virtual channels it passes through.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// `true` for `Head` and `HeadTail`.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// `true` for `Tail` and `HeadTail`.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// A flow-control unit travelling through the network.
///
/// Every flit carries its packet header fields so that per-flit components
/// (DEMUXes, early ejection, fault bypass logic) can be modelled without a
/// side-channel. The *look-ahead route* ([`Flit::next_out`]) is the output
/// port the flit must take at the router it is **arriving at** — computed
/// one hop upstream, as in §3.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Head/body/tail position.
    pub kind: FlitKind,
    /// Zero-based flit sequence number within the packet.
    pub seq: u16,
    /// Source node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// Cycle the packet was offered to the network interface.
    pub created_at: Cycle,
    /// Cycle the head flit actually entered a router buffer.
    pub injected_at: Cycle,
    /// Look-ahead route: output port at the router this flit is arriving
    /// at (or currently buffered in). [`Direction::Local`] means eject.
    pub next_out: Direction,
    /// Dimension traversal order the packet committed to at injection
    /// (always [`AxisOrder::Xy`] for plain XY routing).
    pub order: AxisOrder,
    /// Whether the packet currently travels on escape (deadlock-free)
    /// virtual channels; set by the upstream VA when it had to fall back.
    pub escape: bool,
    /// Whether this is a *poison tail*: a synthetic tail emitted when a
    /// mid-run fault fragments a packet whose head already moved on. It
    /// chases the fragment down its allocated wormhole, releasing VCs
    /// and credits hop by hop, and is discarded (never delivered) at
    /// the ejection port.
    #[serde(default)]
    pub poison: bool,
}

impl Flit {
    /// Yields the flits of one packet without heap allocation — the
    /// network interface extends its source queue directly from this
    /// iterator in the simulator's hot loop. The head's `next_out` must
    /// still be filled in by the injecting network interface via
    /// look-ahead routing.
    ///
    /// # Panics
    ///
    /// Panics if `num_flits` is zero.
    pub fn packet_flit_iter(
        packet: PacketId,
        src: Coord,
        dst: Coord,
        created_at: Cycle,
        num_flits: u16,
        order: AxisOrder,
    ) -> impl Iterator<Item = Flit> {
        assert!(num_flits > 0, "a packet must contain at least one flit");
        (0..num_flits).map(move |seq| {
            let kind = match (seq, num_flits) {
                (0, 1) => FlitKind::HeadTail,
                (0, _) => FlitKind::Head,
                (s, n) if s + 1 == n => FlitKind::Tail,
                _ => FlitKind::Body,
            };
            Flit {
                packet,
                kind,
                seq,
                src,
                dst,
                created_at,
                injected_at: created_at,
                next_out: Direction::Local,
                order,
                escape: false,
                poison: false,
            }
        })
    }

    /// Builds the poison tail that closes the wormhole of a fragmented
    /// packet (see [`Flit::poison`]). `next_out` must be the output the
    /// already-forwarded fragment was allocated at the router emitting
    /// the poison.
    pub fn poison_tail(packet: PacketId, src: Coord, dst: Coord, next_out: Direction) -> Flit {
        Flit {
            packet,
            kind: FlitKind::Tail,
            seq: u16::MAX,
            src,
            dst,
            created_at: 0,
            injected_at: 0,
            next_out,
            order: AxisOrder::Xy,
            escape: false,
            poison: true,
        }
    }

    /// Builds the flits of one packet as a vector (convenience wrapper
    /// over [`Flit::packet_flit_iter`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_flits` is zero.
    pub fn packet_flits(
        packet: PacketId,
        src: Coord,
        dst: Coord,
        created_at: Cycle,
        num_flits: u16,
        order: AxisOrder,
    ) -> Vec<Flit> {
        Self::packet_flit_iter(packet, src, dst, created_at, num_flits, order).collect()
    }
}

/// A packet awaiting injection at a network interface.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source node.
    pub src: Coord,
    /// Destination node.
    pub dst: Coord,
    /// Cycle the packet was generated.
    pub created_at: Cycle,
    /// Number of flits (paper default: 4 × 128-bit flits).
    pub num_flits: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_flits_kinds() {
        let flits = Flit::packet_flits(
            PacketId(7),
            Coord::new(0, 0),
            Coord::new(3, 3),
            10,
            4,
            AxisOrder::Xy,
        );
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits.iter().all(|f| f.packet == PacketId(7)));
        assert!(flits.iter().enumerate().all(|(i, f)| f.seq as usize == i));
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let flits = Flit::packet_flits(
            PacketId(1),
            Coord::new(0, 0),
            Coord::new(1, 0),
            0,
            1,
            AxisOrder::Xy,
        );
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head());
        assert!(flits[0].kind.is_tail());
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_packet_panics() {
        let _ = Flit::packet_flits(
            PacketId(1),
            Coord::new(0, 0),
            Coord::new(1, 0),
            0,
            0,
            AxisOrder::Xy,
        );
    }

    #[test]
    fn head_tail_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(!FlitKind::Head.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Tail.is_head());
        assert!(!FlitKind::Body.is_head());
        assert!(!FlitKind::Body.is_tail());
    }

    #[test]
    fn packet_id_display() {
        assert_eq!(PacketId(42).to_string(), "pkt#42");
    }
}
