//! Virtual-channel classes, descriptors and references.
//!
//! The RoCo router's *Guided Flit Queuing* (§3.1) steers every incoming
//! flit into a buffer dedicated to its output path. The paper's Table 1
//! names six buffer classes; this module encodes the classes, how a flit's
//! class is derived from its look-ahead route, and the per-VC descriptors
//! routers publish so the *upstream* router can run virtual-channel
//! allocation against them.

use crate::geometry::{Axis, Direction};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Traffic class of a flit at a router input, derived from the port it
/// arrives on and the output port its look-ahead route selected
/// (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VcClass {
    /// Continuing along the X dimension (East–West through-traffic).
    Dx,
    /// Continuing along the Y dimension (North–South through-traffic).
    Dy,
    /// Turning from the X dimension into the Y dimension.
    Txy,
    /// Turning from the Y dimension into the X dimension.
    Tyx,
    /// Injected by the local PE, first leg along X.
    InjXy,
    /// Injected by the local PE, first leg along Y.
    InjYx,
    /// Destined for the local PE (ejection; never buffered by RoCo thanks
    /// to Early Ejection, but a regular class for the generic router).
    Eject,
}

impl VcClass {
    /// Derives the class of a flit that arrives on input port `in_dir`
    /// and departs through `out_dir` (its look-ahead route).
    ///
    /// `in_dir` is the port the flit arrives on: a flit travelling East
    /// arrives on the *West* port. `in_dir == Local` means injection.
    ///
    /// # Panics
    ///
    /// Panics on `in_dir == out_dir` for mesh directions (a minimal route
    /// never sends a flit back out of the port it arrived on) and on
    /// `Local -> Local` (a PE never sends to itself through the router).
    pub fn derive(in_dir: Direction, out_dir: Direction) -> VcClass {
        if out_dir == Direction::Local {
            assert!(in_dir != Direction::Local, "local->local transfer never enters the router");
            return VcClass::Eject;
        }
        if in_dir == Direction::Local {
            return match out_dir.axis() {
                Some(Axis::X) => VcClass::InjXy,
                Some(Axis::Y) => VcClass::InjYx,
                None => unreachable!(),
            };
        }
        assert_ne!(in_dir, out_dir, "minimal routes never U-turn");
        // A flit arriving on port `in_dir` was travelling along
        // `in_dir`'s axis (e.g. the West port receives eastbound flits).
        let in_axis = in_dir.axis().expect("mesh input port");
        let out_axis = out_dir.axis().expect("mesh output port");
        match (in_axis, out_axis) {
            (Axis::X, Axis::X) => VcClass::Dx,
            (Axis::Y, Axis::Y) => VcClass::Dy,
            (Axis::X, Axis::Y) => VcClass::Txy,
            (Axis::Y, Axis::X) => VcClass::Tyx,
        }
    }

    /// The router module (axis) whose crossbar serves this class's output,
    /// or `None` for ejection (which never crosses a crossbar in RoCo).
    pub fn output_axis(self) -> Option<Axis> {
        match self {
            VcClass::Dx | VcClass::Tyx | VcClass::InjXy => Some(Axis::X),
            VcClass::Dy | VcClass::Txy | VcClass::InjYx => Some(Axis::Y),
            VcClass::Eject => None,
        }
    }
}

impl fmt::Display for VcClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VcClass::Dx => "dx",
            VcClass::Dy => "dy",
            VcClass::Txy => "txy",
            VcClass::Tyx => "tyx",
            VcClass::InjXy => "Injxy",
            VcClass::InjYx => "Injyx",
            VcClass::Eject => "eject",
        };
        f.write_str(s)
    }
}

/// Which traffic a virtual channel admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcAdmission {
    /// Any class (generic router VCs and Path-Sensitive path-set VCs).
    Any,
    /// Exactly one RoCo class from Table 1.
    Class(VcClass),
}

impl VcAdmission {
    /// Whether a flit of `class` may be queued in a VC with this admission.
    pub fn admits(self, class: VcClass) -> bool {
        match self {
            VcAdmission::Any => true,
            VcAdmission::Class(c) => c == class,
        }
    }
}

/// Restriction of an escape VC to a single (input port, output port)
/// turn, used by the paper's deadlock-freedom argument (§3.1: "the first
/// `txy` VC … is used for turning from the east to the south, and the
/// second … from the east to the north").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TurnFilter {
    /// Input port the flit must arrive on.
    pub in_dir: Direction,
    /// Output port the flit must depart through.
    pub out_dir: Direction,
}

/// Everything the upstream VA needs to know about a flit to decide
/// whether a downstream virtual channel may hold it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcRequest {
    /// Port at the downstream router the flit arrives on (`Local` for
    /// injection requests evaluated at the local router).
    pub in_dir: Direction,
    /// Output port the flit takes at the downstream router (its
    /// look-ahead route); `Local` means ejection there.
    pub out_dir: Direction,
    /// Dimension-traversal order the packet committed to.
    pub order: crate::geometry::AxisOrder,
    /// Bitmask of acceptable destination quadrants (bit 0 = NE, 1 = NW,
    /// 2 = SE, 3 = SW) relative to the downstream router, used by the
    /// Path-Sensitive router's path-set admission. Axis-aligned
    /// destinations set two bits; `0` when the destination is the
    /// downstream router itself.
    pub quadrant_mask: u8,
    /// Dateline class of the packet at the downstream router: `true`
    /// once it has crossed the wraparound dateline of the ring it is
    /// currently traversing (always `false` on non-wraparound
    /// topologies).
    pub dateline: bool,
}

/// Static description of one virtual channel at a router input, published
/// to the upstream router so that VA can be performed remotely
/// (look-ahead VA over the downstream buffer pool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcDescriptor {
    /// Admissible traffic.
    pub admission: VcAdmission,
    /// Buffer depth in flits (0 after a buffer fault took the VC out of
    /// service via Virtual Queuing).
    pub capacity: u8,
    /// Whether this VC belongs to the deadlock-free escape set (packets on
    /// escape VCs must follow strict dimension order).
    pub escape: bool,
    /// Optional restriction to a single turn (only meaningful for escape
    /// `txy`/`tyx` channels).
    pub turn: Option<TurnFilter>,
    /// Optional restriction to packets of one dimension-traversal order.
    /// XY-YX routing keeps its two packet classes on disjoint channels
    /// for deadlock freedom ("two additional dx VCs are required", §3.1).
    pub order: Option<crate::geometry::AxisOrder>,
    /// Optional restriction to one destination quadrant (Path-Sensitive
    /// path sets; index per [`VcRequest::quadrant`]).
    pub quadrant: Option<u8>,
    /// Optional restriction to one arrival port ("three groups of VCs to
    /// hold flits from possible directions from the previous router").
    pub arrival: Option<Direction>,
    /// Optional restriction to one dateline class (wraparound
    /// topologies): `Some(false)` holds packets that have not crossed
    /// the current ring's dateline, `Some(true)` those that have.
    /// `None` admits both (all mesh-topology channels).
    #[serde(default)]
    pub dateline: Option<bool>,
}

impl VcDescriptor {
    /// A non-escape channel admitting `admission` with `capacity` flits.
    pub fn new(admission: VcAdmission, capacity: u8) -> Self {
        VcDescriptor {
            admission,
            capacity,
            escape: false,
            turn: None,
            order: None,
            quadrant: None,
            arrival: None,
            dateline: None,
        }
    }

    /// Marks the channel as part of the escape set.
    pub fn escape(mut self) -> Self {
        self.escape = true;
        self
    }

    /// Restricts the channel to a single turn.
    pub fn with_turn(mut self, in_dir: Direction, out_dir: Direction) -> Self {
        self.turn = Some(TurnFilter { in_dir, out_dir });
        self
    }

    /// Restricts the channel to packets travelling in `order`.
    pub fn with_order(mut self, order: crate::geometry::AxisOrder) -> Self {
        self.order = Some(order);
        self
    }

    /// Restricts the channel to one destination quadrant.
    pub fn with_quadrant(mut self, quadrant: u8) -> Self {
        self.quadrant = Some(quadrant);
        self
    }

    /// Restricts the channel to flits arriving on `dir`.
    pub fn with_arrival(mut self, dir: Direction) -> Self {
        self.arrival = Some(dir);
        self
    }

    /// Restricts the channel to one dateline class (wraparound
    /// topologies' deadlock-avoidance partition).
    pub fn with_dateline(mut self, crossed: bool) -> Self {
        self.dateline = Some(crossed);
        self
    }

    /// Whether a flit described by `req` may be allocated this channel.
    pub fn accepts(&self, req: &VcRequest) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if !self.admission.admits(VcClass::derive(req.in_dir, req.out_dir)) {
            return false;
        }
        if let Some(required) = self.order {
            if required != req.order {
                return false;
            }
        }
        if let Some(q) = self.quadrant {
            if req.quadrant_mask & (1 << q) == 0 {
                return false;
            }
        }
        if let Some(a) = self.arrival {
            if a != req.in_dir {
                return false;
            }
        }
        if let Some(d) = self.dateline {
            if d != req.dateline {
                return false;
            }
        }
        match self.turn {
            None => true,
            Some(t) => t.in_dir == req.in_dir && t.out_dir == req.out_dir,
        }
    }
}

/// Reference to one virtual channel at a router: the input side it hangs
/// off plus its index within that side's VC list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VcRef {
    /// Input side (mesh direction of the link, or `Local` for injection).
    pub dir: Direction,
    /// Index within the input side's VC list.
    pub idx: u8,
}

impl VcRef {
    /// Creates a reference.
    pub const fn new(dir: Direction, idx: u8) -> Self {
        VcRef { dir, idx }
    }
}

impl fmt::Display for VcRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.dir, self.idx)
    }
}

/// A credit returned upstream when a flit leaves a VC buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Credit {
    /// Index of the VC (within the receiving link's VC list) that freed a slot.
    pub vc: u8,
    /// `true` when the departing flit was the packet tail, making the VC
    /// available for re-allocation upstream.
    pub vc_freed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Direction::*;

    #[test]
    fn class_derivation_matches_table_semantics() {
        // Eastbound through-traffic: arrives on West port, leaves East.
        assert_eq!(VcClass::derive(West, East), VcClass::Dx);
        assert_eq!(VcClass::derive(East, West), VcClass::Dx);
        assert_eq!(VcClass::derive(North, South), VcClass::Dy);
        assert_eq!(VcClass::derive(South, North), VcClass::Dy);
        // Turns.
        assert_eq!(VcClass::derive(West, North), VcClass::Txy);
        assert_eq!(VcClass::derive(East, South), VcClass::Txy);
        assert_eq!(VcClass::derive(North, East), VcClass::Tyx);
        assert_eq!(VcClass::derive(South, West), VcClass::Tyx);
        // Injection.
        assert_eq!(VcClass::derive(Local, East), VcClass::InjXy);
        assert_eq!(VcClass::derive(Local, North), VcClass::InjYx);
        // Ejection.
        assert_eq!(VcClass::derive(East, Local), VcClass::Eject);
    }

    #[test]
    #[should_panic(expected = "U-turn")]
    fn u_turn_is_rejected() {
        let _ = VcClass::derive(East, East);
    }

    #[test]
    fn output_axis_per_class() {
        assert_eq!(VcClass::Dx.output_axis(), Some(Axis::X));
        assert_eq!(VcClass::Tyx.output_axis(), Some(Axis::X));
        assert_eq!(VcClass::InjXy.output_axis(), Some(Axis::X));
        assert_eq!(VcClass::Dy.output_axis(), Some(Axis::Y));
        assert_eq!(VcClass::Txy.output_axis(), Some(Axis::Y));
        assert_eq!(VcClass::InjYx.output_axis(), Some(Axis::Y));
        assert_eq!(VcClass::Eject.output_axis(), None);
    }

    #[test]
    fn admission_rules() {
        assert!(VcAdmission::Any.admits(VcClass::Dx));
        assert!(VcAdmission::Any.admits(VcClass::Eject));
        assert!(VcAdmission::Class(VcClass::Txy).admits(VcClass::Txy));
        assert!(!VcAdmission::Class(VcClass::Txy).admits(VcClass::Dx));
    }

    fn req(in_dir: Direction, out_dir: Direction) -> VcRequest {
        VcRequest {
            in_dir,
            out_dir,
            order: crate::geometry::AxisOrder::Xy,
            quadrant_mask: 0b1111,
            dateline: false,
        }
    }

    #[test]
    fn descriptor_dateline_filter() {
        let pre = VcDescriptor::new(VcAdmission::Any, 5).with_dateline(false);
        let post = VcDescriptor::new(VcAdmission::Any, 5).with_dateline(true);
        let both = VcDescriptor::new(VcAdmission::Any, 5);
        let mut r = req(West, East);
        assert!(pre.accepts(&r));
        assert!(!post.accepts(&r));
        assert!(both.accepts(&r));
        r.dateline = true;
        assert!(!pre.accepts(&r));
        assert!(post.accepts(&r));
        assert!(both.accepts(&r));
    }

    #[test]
    fn descriptor_turn_filter() {
        let vc =
            VcDescriptor::new(VcAdmission::Class(VcClass::Txy), 5).escape().with_turn(East, South);
        assert!(vc.accepts(&req(East, South)));
        // Same class, wrong turn.
        assert!(!vc.accepts(&req(East, North)));
        assert!(!vc.accepts(&req(West, South)));
        // Wrong class entirely.
        assert!(!vc.accepts(&req(West, East)));
        assert!(vc.escape);
    }

    #[test]
    fn descriptor_without_turn_accepts_whole_class() {
        let vc = VcDescriptor::new(VcAdmission::Class(VcClass::Dx), 5);
        assert!(vc.accepts(&req(West, East)));
        assert!(vc.accepts(&req(East, West)));
        assert!(!vc.accepts(&req(West, North)));
    }

    #[test]
    fn descriptor_order_filter() {
        use crate::geometry::AxisOrder::Yx;
        let vc = VcDescriptor::new(VcAdmission::Class(VcClass::Dx), 5).with_order(Yx);
        let mut r = req(West, East);
        r.order = Yx;
        assert!(vc.accepts(&r));
        assert!(!vc.accepts(&req(West, East)), "XY packets excluded from a YX-class channel");
    }

    #[test]
    fn descriptor_quadrant_and_arrival_filters() {
        // A Path-Sensitive NE path-set VC reserved for flits arriving
        // from the West port.
        let vc = VcDescriptor::new(VcAdmission::Any, 5).with_quadrant(0).with_arrival(West);
        let mut r = req(West, East);
        r.quadrant_mask = 0b0001; // NE only
        assert!(vc.accepts(&r));
        r.quadrant_mask = 0b0100; // SE only
        assert!(!vc.accepts(&r), "wrong quadrant rejected");
        r.quadrant_mask = 0b0101; // aligned destination: NE or SE
        assert!(vc.accepts(&r), "aligned destinations match both sets");
        let mut r = req(South, North);
        r.quadrant_mask = 0b0001;
        assert!(!vc.accepts(&r), "wrong arrival port rejected");
    }

    #[test]
    fn zero_capacity_vc_rejects_everything() {
        let vc = VcDescriptor::new(VcAdmission::Any, 0);
        assert!(!vc.accepts(&req(West, East)), "a faulted-out VC admits nothing");
    }

    #[test]
    fn vc_ref_display() {
        assert_eq!(VcRef::new(East, 2).to_string(), "E#2");
    }
}
