//! Fault-status link masks and reachability maps (ISSUE 8).
//!
//! The §4.1 published-status handshake gives every node a bounded-stale
//! view of its neighbours' health. [`LinkMask`] condenses that view into
//! one 4-bit word per node — bit [`Direction::index`] set means the
//! output link on that side is currently usable — so route computation
//! can exclude dead links with a single mask intersection instead of a
//! status lookup per candidate. [`ReachabilityMap`] is the source-side
//! companion: per-destination connectivity over the masked link graph,
//! recomputed only when a republication actually changes the mask, so
//! sources can fail packets toward unreachable destinations fast
//! (`unroutable`) instead of burning bounded-retry cycles.

use crate::config::MeshConfig;
use crate::geometry::{Coord, Direction};
use crate::node::NodeStatus;
use crate::topology::{Topology, TopologyOps};

/// Per-node usable-output-link bitmask over the four mesh directions.
///
/// A link `(node, dir)` is *usable* when the node's own output on that
/// side is serviceable, a neighbour exists there, and the neighbour is
/// not dead — all judged from the **published** statuses, so the mask
/// carries the same bounded (`handshake_latency`) staleness as the
/// §4.1 status wires it models.
///
/// Adjacency comes from a [`Topology`]: constructors accept anything
/// convertible into one, so existing mesh call sites can keep passing a
/// [`MeshConfig`] while topology-aware callers pass the resolved
/// instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkMask {
    topo: Topology,
    /// One 4-bit word per node, bit [`Direction::index`] = output usable.
    bits: Vec<u8>,
}

impl LinkMask {
    /// Bitmask with every in-mesh link on all four sides.
    const FULL: u8 = 0b1111;

    /// A mask over `topo` where every connected link is usable (the
    /// fault-free view; unconnected boundary bits are clear).
    pub fn all_up(topo: impl Into<Topology>) -> Self {
        LinkMask::from_fn(topo, |_, _| true)
    }

    /// Builds a mask by asking `usable(node, dir)` for every connected
    /// link. Ports with no neighbour are always masked off.
    pub fn from_fn(
        topo: impl Into<Topology>,
        mut usable: impl FnMut(Coord, Direction) -> bool,
    ) -> Self {
        let topo = topo.into();
        let grid = topo.grid();
        let mut bits = vec![0u8; topo.nodes()];
        for (i, word) in bits.iter_mut().enumerate() {
            let node = Coord::from_index(i, grid.width);
            for dir in Direction::MESH {
                if topo.neighbor(node, dir).is_some() && usable(node, dir) {
                    *word |= 1 << dir.index();
                }
            }
        }
        LinkMask { topo, bits }
    }

    /// Builds the mask implied by a slice of **published** node
    /// statuses (indexed by [`Coord::index`]): `(node, dir)` is usable
    /// when the node's own output on that side is serviceable and the
    /// neighbour on that side is not dead.
    pub fn from_statuses(topo: impl Into<Topology>, statuses: &[NodeStatus]) -> Self {
        let topo = topo.into();
        let grid = topo.grid();
        assert_eq!(statuses.len(), topo.nodes(), "one status per node");
        LinkMask::from_fn(topo.clone(), |node, dir| {
            let own = statuses[node.index(grid.width)];
            let Some(nb) = topo.neighbor(node, dir) else { return false };
            own.can_serve_output(dir) && !statuses[nb.index(grid.width)].node_dead()
        })
    }

    /// The bounding grid this mask covers.
    pub fn mesh(&self) -> MeshConfig {
        self.topo.grid()
    }

    /// The topology this mask covers.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Whether the output link `(node, dir)` is usable.
    /// [`Direction::Local`] is always usable (ejection is not a link).
    pub fn usable(&self, node: Coord, dir: Direction) -> bool {
        if dir == Direction::Local {
            return true;
        }
        self.bits[node.index(self.topo.grid().width)] & (1 << dir.index()) != 0
    }

    /// The raw 4-bit word for the node at flat index `i`.
    pub fn node_bits(&self, i: usize) -> u8 {
        self.bits[i]
    }

    /// `true` when every connected link is usable (fault-free mask).
    pub fn is_full(&self) -> bool {
        let grid = self.topo.grid();
        self.bits.iter().enumerate().all(|(i, &w)| {
            let node = Coord::from_index(i, grid.width);
            let full: u8 = Direction::MESH
                .iter()
                .filter(|&&d| self.topo.neighbor(node, d).is_some())
                .fold(0, |acc, d| acc | (1 << d.index()));
            w == full & Self::FULL
        })
    }
}

/// Per-destination connectivity over the masked link graph.
///
/// `reachable(src, dst)` answers "does *any* path of usable links lead
/// from `src` to `dst`?" — a sound over-approximation of every routing
/// function we ship: when it says unreachable, no candidate set could
/// deliver the packet, so failing fast is safe; when it says reachable
/// but the turn model still cannot get there, the packet falls back to
/// the normal retry/abandon path and accounting stays closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachabilityMap {
    topo: Topology,
    /// Row-major `[dst][src]` reachability, flattened.
    reach: Vec<bool>,
}

impl ReachabilityMap {
    /// Computes reachability by a backward BFS from every destination
    /// over the reversed masked link graph. O(nodes²) — recomputed only
    /// on republication events, never on the cycle hot path.
    pub fn compute(mask: &LinkMask) -> Self {
        let topo = mask.topology().clone();
        let grid = topo.grid();
        let n = topo.nodes();
        let mut reach = vec![false; n * n];
        let mut queue = Vec::with_capacity(n);
        for dst in 0..n {
            let row = &mut reach[dst * n..(dst + 1) * n];
            row[dst] = true;
            queue.clear();
            queue.push(dst);
            while let Some(v) = queue.pop() {
                let vc = Coord::from_index(v, grid.width);
                // Predecessors: nodes u with a usable link into v.
                // Port symmetry gives: u --dir.opposite()--> v.
                for dir in Direction::MESH {
                    let Some(u) = topo.neighbor(vc, dir) else { continue };
                    let ui = u.index(grid.width);
                    if !row[ui] && mask.usable(u, dir.opposite()) {
                        row[ui] = true;
                        queue.push(ui);
                    }
                }
            }
        }
        ReachabilityMap { topo, reach }
    }

    /// The topology this map covers.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Human-readable name of `node` under the covered topology (for
    /// postmortems and reports; meshes print `(x,y)`, circulants `#i`,
    /// chiplet meshes `chip(cx,cy)/(lx,ly)`).
    pub fn node_name(&self, node: Coord) -> String {
        self.topo.node_name(node)
    }

    /// Whether any path of usable links leads from `src` to `dst`.
    pub fn reachable(&self, src: Coord, dst: Coord) -> bool {
        let grid = self.topo.grid();
        let n = self.topo.nodes();
        self.reach[dst.index(grid.width) * n + src.index(grid.width)]
    }

    /// Number of sources that can reach `dst` (including `dst` itself).
    pub fn sources_reaching(&self, dst: Coord) -> usize {
        let n = self.topo.nodes();
        let d = dst.index(self.topo.grid().width);
        self.reach[d * n..(d + 1) * n].iter().filter(|&&r| r).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> MeshConfig {
        MeshConfig::new(4, 4)
    }

    #[test]
    fn all_up_masks_only_the_boundary() {
        let m = LinkMask::all_up(mesh());
        assert!(m.is_full());
        assert!(m.usable(Coord::new(1, 1), Direction::East));
        // Boundary links leave the mesh and are never usable.
        assert!(!m.usable(Coord::new(0, 0), Direction::West));
        assert!(!m.usable(Coord::new(0, 0), Direction::North));
        // Ejection is not a link.
        assert!(m.usable(Coord::new(0, 0), Direction::Local));
    }

    #[test]
    fn from_fn_respects_the_predicate() {
        let cut = (Coord::new(1, 1), Direction::East);
        let m = LinkMask::from_fn(mesh(), |n, d| (n, d) != cut);
        assert!(!m.usable(cut.0, cut.1));
        assert!(m.usable(Coord::new(1, 1), Direction::South));
        assert!(!m.is_full());
    }

    #[test]
    fn fully_connected_mesh_reaches_everywhere() {
        let r = ReachabilityMap::compute(&LinkMask::all_up(mesh()));
        for s in 0..16 {
            for d in 0..16 {
                let (s, d) = (Coord::from_index(s, 4), Coord::from_index(d, 4));
                assert!(r.reachable(s, d), "{s:?} should reach {d:?}");
            }
        }
        assert_eq!(r.sources_reaching(Coord::new(2, 2)), 16);
    }

    #[test]
    fn severed_column_splits_reachability() {
        // Cut every link crossing between x=1 and x=2, in both
        // directions: the mesh splits into two halves.
        let m = LinkMask::from_fn(mesh(), |n, d| {
            !((n.x == 1 && d == Direction::East) || (n.x == 2 && d == Direction::West))
        });
        let r = ReachabilityMap::compute(&m);
        assert!(r.reachable(Coord::new(0, 0), Coord::new(1, 3)));
        assert!(r.reachable(Coord::new(3, 0), Coord::new(2, 3)));
        assert!(!r.reachable(Coord::new(0, 0), Coord::new(2, 0)));
        assert!(!r.reachable(Coord::new(3, 3), Coord::new(1, 3)));
        assert_eq!(r.sources_reaching(Coord::new(0, 0)), 8);
    }

    #[test]
    fn one_way_links_are_directional() {
        // Usable (1,1)->E but not (2,1)->W: (1,1) reaches (2,1), and
        // (2,1) still reaches (1,1) the long way around unless we also
        // cut the detours — so cut the whole column except one eastward
        // link to make the asymmetry visible.
        let m = LinkMask::from_fn(mesh(), |n, d| {
            let crossing_east = n.x == 1 && d == Direction::East;
            let crossing_west = n.x == 2 && d == Direction::West;
            if crossing_west {
                return false;
            }
            if crossing_east {
                return n.y == 1;
            }
            true
        });
        let r = ReachabilityMap::compute(&m);
        assert!(r.reachable(Coord::new(0, 0), Coord::new(3, 3)));
        assert!(!r.reachable(Coord::new(3, 3), Coord::new(0, 0)));
    }

    #[test]
    fn from_statuses_masks_dead_neighbours_both_ways() {
        let mut statuses = vec![NodeStatus::default(); mesh().nodes()];
        let dead = Coord::new(2, 1).index(4);
        statuses[dead] = NodeStatus {
            row: crate::ModuleHealth::Dead,
            col: crate::ModuleHealth::Dead,
            rc_ok: false,
        };
        let m = LinkMask::from_statuses(mesh(), &statuses);
        // Links into the dead node are masked (neighbour dead)…
        assert!(!m.usable(Coord::new(1, 1), Direction::East));
        assert!(!m.usable(Coord::new(2, 0), Direction::South));
        // …and links out of it are masked (own outputs unserviceable).
        assert!(!m.usable(Coord::new(2, 1), Direction::East));
        // Unrelated links stay up.
        assert!(m.usable(Coord::new(0, 0), Direction::East));
        // The dead node is unreachable; everyone else still connects.
        let r = ReachabilityMap::compute(&m);
        assert!(!r.reachable(Coord::new(0, 0), Coord::new(2, 1)));
        assert!(r.reachable(Coord::new(0, 0), Coord::new(3, 3)));
    }
}
