//! Mesh geometry: node coordinates, port directions and dimension axes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node position in a 2D mesh, `x` growing eastward and `y` growing
/// southward (row-major, origin at the north-west corner).
///
/// # Examples
///
/// ```
/// use noc_core::{Coord, Direction};
/// let a = Coord::new(1, 2);
/// let b = Coord::new(4, 2);
/// assert_eq!(a.direction_towards_x(b), Some(Direction::East));
/// assert_eq!(a.manhattan_distance(b), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column index (0 = westmost).
    pub x: u16,
    /// Row index (0 = northmost).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from column `x` and row `y`.
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan (hop) distance to `other`.
    pub fn manhattan_distance(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// The direction of travel along the X axis needed to reach `dst`,
    /// or `None` when already aligned in X.
    pub fn direction_towards_x(self, dst: Coord) -> Option<Direction> {
        match self.x.cmp(&dst.x) {
            std::cmp::Ordering::Less => Some(Direction::East),
            std::cmp::Ordering::Greater => Some(Direction::West),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// The direction of travel along the Y axis needed to reach `dst`,
    /// or `None` when already aligned in Y.
    pub fn direction_towards_y(self, dst: Coord) -> Option<Direction> {
        match self.y.cmp(&dst.y) {
            std::cmp::Ordering::Less => Some(Direction::South),
            std::cmp::Ordering::Greater => Some(Direction::North),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// The neighbouring coordinate in `dir`, or `None` if it would fall
    /// outside a `width × height` mesh (or if `dir` is [`Direction::Local`]).
    pub fn neighbor(self, dir: Direction, width: u16, height: u16) -> Option<Coord> {
        match dir {
            Direction::North if self.y > 0 => Some(Coord::new(self.x, self.y - 1)),
            Direction::South if self.y + 1 < height => Some(Coord::new(self.x, self.y + 1)),
            Direction::West if self.x > 0 => Some(Coord::new(self.x - 1, self.y)),
            Direction::East if self.x + 1 < width => Some(Coord::new(self.x + 1, self.y)),
            _ => None,
        }
    }

    /// Flattened row-major node index inside a mesh of the given `width`.
    pub fn index(self, width: u16) -> usize {
        self.y as usize * width as usize + self.x as usize
    }

    /// Inverse of [`Coord::index`].
    pub fn from_index(index: usize, width: u16) -> Coord {
        Coord::new((index % width as usize) as u16, (index / width as usize) as u16)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// One of the four mesh ports of a router, or the local PE port.
///
/// The numeric discriminants are stable and used as array indices
/// throughout the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    /// Towards decreasing `y`.
    North = 0,
    /// Towards increasing `x`.
    East = 1,
    /// Towards increasing `y`.
    South = 2,
    /// Towards decreasing `x`.
    West = 3,
    /// The local processing element (injection/ejection).
    Local = 4,
}

impl Direction {
    /// The four mesh directions in index order (`North`, `East`, `South`,
    /// `West`), excluding [`Direction::Local`].
    pub const MESH: [Direction; 4] =
        [Direction::North, Direction::East, Direction::South, Direction::West];

    /// All five directions including [`Direction::Local`].
    pub const ALL: [Direction; 5] =
        [Direction::North, Direction::East, Direction::South, Direction::West, Direction::Local];

    /// The opposite mesh direction; `Local` is its own opposite.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::Local => Direction::Local,
        }
    }

    /// The axis this direction travels along (`Local` has no axis).
    pub fn axis(self) -> Option<Axis> {
        match self {
            Direction::East | Direction::West => Some(Axis::X),
            Direction::North | Direction::South => Some(Axis::Y),
            Direction::Local => None,
        }
    }

    /// Stable array index (0..=4).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Direction::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index > 4`.
    pub fn from_index(index: usize) -> Direction {
        match index {
            0 => Direction::North,
            1 => Direction::East,
            2 => Direction::South,
            3 => Direction::West,
            4 => Direction::Local,
            _ => panic!("direction index out of range: {index}"),
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
            Direction::Local => "L",
        };
        f.write_str(s)
    }
}

/// A mesh dimension: `X` (East–West, served by the RoCo *Row* module) or
/// `Y` (North–South, served by the *Column* module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// East–West.
    X,
    /// North–South.
    Y,
}

impl Axis {
    /// The other axis.
    pub fn other(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => f.write_str("X"),
            Axis::Y => f.write_str("Y"),
        }
    }
}

/// Dimension traversal order chosen for a packet under oblivious routing:
/// `Xy` exhausts X hops first (classic DOR), `Yx` exhausts Y hops first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AxisOrder {
    /// X first, then Y (dimension-order / XY routing).
    Xy,
    /// Y first, then X.
    Yx,
}

impl AxisOrder {
    /// First axis traversed under this order.
    pub fn first(self) -> Axis {
        match self {
            AxisOrder::Xy => Axis::X,
            AxisOrder::Yx => Axis::Y,
        }
    }
}

impl fmt::Display for AxisOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisOrder::Xy => f.write_str("XY"),
            AxisOrder::Yx => f.write_str("YX"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Coord::new(1, 5);
        let b = Coord::new(6, 2);
        assert_eq!(a.manhattan_distance(b), 8);
        assert_eq!(b.manhattan_distance(a), 8);
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn direction_towards_axes() {
        let a = Coord::new(3, 3);
        assert_eq!(a.direction_towards_x(Coord::new(5, 0)), Some(Direction::East));
        assert_eq!(a.direction_towards_x(Coord::new(0, 0)), Some(Direction::West));
        assert_eq!(a.direction_towards_x(Coord::new(3, 7)), None);
        assert_eq!(a.direction_towards_y(Coord::new(0, 5)), Some(Direction::South));
        assert_eq!(a.direction_towards_y(Coord::new(0, 1)), Some(Direction::North));
        assert_eq!(a.direction_towards_y(Coord::new(7, 3)), None);
    }

    #[test]
    fn neighbor_respects_mesh_bounds() {
        let c = Coord::new(0, 0);
        assert_eq!(c.neighbor(Direction::North, 8, 8), None);
        assert_eq!(c.neighbor(Direction::West, 8, 8), None);
        assert_eq!(c.neighbor(Direction::East, 8, 8), Some(Coord::new(1, 0)));
        assert_eq!(c.neighbor(Direction::South, 8, 8), Some(Coord::new(0, 1)));
        let edge = Coord::new(7, 7);
        assert_eq!(edge.neighbor(Direction::East, 8, 8), None);
        assert_eq!(edge.neighbor(Direction::South, 8, 8), None);
        assert_eq!(edge.neighbor(Direction::Local, 8, 8), None);
    }

    #[test]
    fn index_round_trips() {
        for y in 0..8 {
            for x in 0..8 {
                let c = Coord::new(x, y);
                assert_eq!(Coord::from_index(c.index(8), 8), c);
            }
        }
    }

    #[test]
    fn opposite_is_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn axis_assignment() {
        assert_eq!(Direction::East.axis(), Some(Axis::X));
        assert_eq!(Direction::West.axis(), Some(Axis::X));
        assert_eq!(Direction::North.axis(), Some(Axis::Y));
        assert_eq!(Direction::South.axis(), Some(Axis::Y));
        assert_eq!(Direction::Local.axis(), None);
        assert_eq!(Axis::X.other(), Axis::Y);
    }

    #[test]
    fn direction_index_round_trips() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn axis_order_first() {
        assert_eq!(AxisOrder::Xy.first(), Axis::X);
        assert_eq!(AxisOrder::Yx.first(), Axis::Y);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Coord::new(2, 3).to_string(), "(2,3)");
        assert_eq!(Direction::North.to_string(), "N");
        assert_eq!(Axis::X.to_string(), "X");
        assert_eq!(AxisOrder::Yx.to_string(), "YX");
    }
}
