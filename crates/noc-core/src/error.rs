//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied to a constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with a human-readable explanation.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError { message: message.into() }
    }

    /// The explanation supplied at construction.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("mesh too small");
        assert_eq!(e.to_string(), "invalid configuration: mesh too small");
        assert_eq!(e.message(), "mesh too small");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
    }
}
