//! Property tests for the topology abstraction (ISSUE 9), mirroring
//! the mask sweep style of `noc-deadlock/tests/masked_property.rs`:
//! every supported topology must expose a *symmetric* port map (a link
//! is one physical object seen from two ends) and build link masks
//! that round-trip through published node statuses exactly like the
//! simulator's fault view does.

use noc_core::{
    Coord, Direction, LinkMask, MeshConfig, ModuleHealth, NodeStatus, ReachabilityMap, Topology,
    TopologyConfig, TopologyOps,
};

/// Dependency-free splitmix64, so the test needs no RNG crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Every topology family at a few shapes each.
fn topologies() -> Vec<(String, Topology)> {
    let mut out = Vec::new();
    for (w, h) in [(2u16, 2u16), (4, 3), (5, 5)] {
        let t = TopologyConfig::Mesh.resolve(MeshConfig::new(w, h)).unwrap();
        out.push((format!("mesh {w}x{h}"), t));
    }
    for (w, h) in [(3u16, 3u16), (4, 4), (5, 3)] {
        let t = TopologyConfig::Torus.resolve(MeshConfig::new(w, h)).unwrap();
        out.push((format!("torus {w}x{h}"), t));
    }
    for (n, s1, s2) in [(13u16, 1u16, 5u16), (16, 1, 7), (25, 1, 7)] {
        let cfg = TopologyConfig::Circulant { nodes: n, s1, s2 };
        let t = cfg.resolve(MeshConfig::new(n, 1)).unwrap();
        out.push((format!("circulant C({n};{s1},{s2})"), t));
    }
    for (cx, cy, w, h, d) in [(2u16, 1u16, 3u16, 3u16, 2u8), (2, 2, 2, 2, 3), (3, 2, 2, 3, 4)] {
        let cfg = TopologyConfig::Chiplet {
            chips_x: cx,
            chips_y: cy,
            chip_width: w,
            chip_height: h,
            d2d_delay: d,
        };
        let t = cfg.resolve(cfg.grid(MeshConfig::new(1, 1))).unwrap();
        out.push((format!("chiplet {cx}x{cy} of {w}x{h} (d2d {d})"), t));
    }
    out
}

fn nodes_of(topo: &Topology) -> impl Iterator<Item = Coord> + '_ {
    let grid = topo.grid();
    (0..topo.nodes()).map(move |i| Coord::from_index(i, grid.width))
}

#[test]
fn port_map_is_symmetric_on_every_topology() {
    // A link is one physical object: if `n`'s `d` port reaches `m`,
    // then `m`'s opposite port must reach `n`, with the same per-link
    // delay seen from both ends. This is what lets the simulator pay
    // credits upstream through the same table it forwards flits
    // downstream through.
    for (name, topo) in topologies() {
        let mut links = 0usize;
        for n in nodes_of(&topo) {
            for d in Direction::MESH {
                let Some(m) = topo.neighbor(n, d) else { continue };
                links += 1;
                assert_eq!(
                    topo.neighbor(m, d.opposite()),
                    Some(n),
                    "{name}: {n} --{d}--> {m} has no return edge"
                );
                assert_eq!(
                    topo.link_delay(n, d),
                    topo.link_delay(m, d.opposite()),
                    "{name}: link {n}--{m} has asymmetric delay"
                );
                let delay = topo.link_delay(n, d);
                assert!(
                    (1..=topo.max_link_delay()).contains(&delay),
                    "{name}: delay {delay} outside [1, max]"
                );
            }
        }
        assert!(links > 0, "{name}: no links at all");
    }
}

#[test]
fn node_names_are_unique_on_every_topology() {
    for (name, topo) in topologies() {
        let mut seen = std::collections::HashSet::new();
        for n in nodes_of(&topo) {
            assert!(seen.insert(topo.node_name(n)), "{name}: duplicate node name at {n}");
        }
        assert_eq!(seen.len(), topo.nodes(), "{name}: name count");
    }
}

#[test]
fn status_masks_round_trip_on_every_topology() {
    // The simulator's fault view: kill a random node's row/column
    // modules, build the mask from published statuses, and check the
    // mask blocks exactly the links touching the dead node — both
    // directions, on every topology.
    let mut rng = SplitMix64(0x7090_0009);
    for (name, topo) in topologies() {
        let grid = topo.grid();
        for _round in 0..8 {
            let dead_idx = (rng.next_u64() % topo.nodes() as u64) as usize;
            let dead = Coord::from_index(dead_idx, grid.width);
            let mut statuses = vec![NodeStatus::healthy(); topo.nodes()];
            statuses[dead_idx] =
                NodeStatus { row: ModuleHealth::Dead, col: ModuleHealth::Dead, rc_ok: false };
            let mask = LinkMask::from_statuses(&topo, &statuses);
            for n in nodes_of(&topo) {
                for d in Direction::MESH {
                    let Some(m) = topo.neighbor(n, d) else { continue };
                    let expect_up = n != dead && m != dead;
                    assert_eq!(
                        mask.usable(n, d),
                        expect_up,
                        "{name}: link {n} --{d}--> {m} with {dead} dead"
                    );
                }
            }
            // And reachability honours the holes: nobody reaches the
            // dead node, every healthy pair on a healthy residual
            // graph reaches each other through the map's BFS.
            let map = ReachabilityMap::compute(&mask);
            for n in nodes_of(&topo) {
                if n != dead {
                    assert!(!map.reachable(n, dead), "{name}: {n} reaches dead {dead}");
                }
            }
        }
        // The healthy mask round-trips trivially: everything usable,
        // everything mutually reachable.
        let healthy = LinkMask::from_statuses(&topo, &vec![NodeStatus::healthy(); topo.nodes()]);
        let map = ReachabilityMap::compute(&healthy);
        for n in nodes_of(&topo) {
            for m in nodes_of(&topo) {
                assert!(map.reachable(n, m), "{name}: healthy {n} cannot reach {m}");
            }
        }
    }
}
