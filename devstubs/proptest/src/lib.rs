//! Miniature, dependency-free stand-in for the subset of `proptest 1`
//! this workspace uses: the `proptest!` / `prop_assert*` macros, range and
//! tuple strategies, `any::<T>()`, `prop_map`, and `collection::vec`.
//!
//! Each property runs a deterministic sweep of cases (seeded from the test
//! name), with no shrinking; a failing case surfaces as an ordinary assert
//! panic. Far weaker than real proptest — sufficient for offline checking.

pub mod test_runner {
    /// SplitMix64 — deterministic, statistically solid, dependency-free.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)` by modulo rejection; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let rem = (u64::MAX % n + 1) % n;
            loop {
                let x = self.next_u64();
                if x <= u64::MAX - rem {
                    return x % n;
                }
            }
        }
    }

    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; the stub trades coverage for
            // wall-clock since CI runs the real crate at full depth.
            ProptestConfig { cases: 24 }
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        pub fn run_named<S, F>(&mut self, name: &str, strategy: S, test: F)
        where
            S: crate::strategy::Strategy,
            F: Fn(S::Value),
        {
            // FNV-1a over the test name keeps per-test streams distinct
            // while staying identical from run to run.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            for case in 0..self.config.cases as u64 {
                let mut rng = TestRng::new(seed.wrapping_add(case.wrapping_mul(0xA076_1D64_78BD_642F)));
                test(strategy.generate(&mut rng));
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strategy: self, f }
        }
    }

    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.generate(rng))
        }
    }

    macro_rules! impl_uint_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_uint_ranges!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuples {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuples! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<A>(PhantomData<A>);

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($cfg);
            __runner.run_named(stringify!($name), ($($strat,)*), |($($arg,)*)| $body);
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}
