//! No-op `Serialize`/`Deserialize` derives: they accept (and discard)
//! `#[serde(...)]` attributes and emit empty trait impls against the stub
//! `serde` crate's marker traits.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name and a generics-free impl header from the item.
/// Handles the shapes this workspace derives on: plain structs and enums,
/// no generic parameters (asserted).
fn type_name(item: TokenStream) -> String {
    let mut tokens = item.into_iter().peekable();
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(ident) = &tok {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        assert!(
                            p.as_char() != '<',
                            "serde stub derive does not support generic types"
                        );
                    }
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde stub derive: could not find type name");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let name = type_name(item);
    format!("impl serde::Serialize for {name} {{}}").parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let name = type_name(item);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}
