//! Dependency-free stand-in for the subset of `criterion 0.5` used by the
//! bench targets. No statistics: each benchmark runs a handful of
//! iterations and prints a coarse per-iteration time, which is enough to
//! smoke-test that benches compile and run offline. Real measurements come
//! from the real crate (CI) or the `perf` binary, which has no criterion
//! dependency.

use std::fmt::Display;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

const ITERS: u32 = 3;

pub struct Bencher;

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        report_elapsed(start, ITERS);
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut spent = std::time::Duration::ZERO;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
        }
        println!("      ~{:?}/iter over {} iters", spent / ITERS, ITERS);
    }
}

fn report_elapsed(start: Instant, iters: u32) {
    println!("      ~{:?}/iter over {} iters", start.elapsed() / iters, iters);
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}/{} (stub: {} iters, no statistics)", self.name, id, ITERS);
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<S: Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{} (stub: {} iters, no statistics)", self.name, id, ITERS);
        f(&mut Bencher, input);
        self
    }

    pub fn finish(&mut self) {}
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup { _c: self, name }
    }

    pub fn bench_function<S: Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string()).bench_function("bench", f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
