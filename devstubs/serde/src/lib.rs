//! Dependency-free stand-in for `serde 1`. The workspace only *derives*
//! `Serialize`/`Deserialize` (all JSON is hand-rolled; no generic code is
//! bounded on these traits), so empty marker traits plus parse-and-discard
//! derive macros are sufficient to compile every crate.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

/// Present for path-compatibility with `serde::de::DeserializeOwned` bounds.
pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}
