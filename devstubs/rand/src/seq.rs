//! Slice helpers (mirrors `rand::seq::SliceRandom` for the methods this
//! workspace calls: `shuffle` and `choose`).

use crate::{Rng, RngCore};

/// rand 0.8's `gen_index`: bounds that fit a u32 are sampled through the
/// u32 uniform (one `next_u32` draw), larger bounds through usize.
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

pub trait SliceRandom {
    type Item;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    /// Fisher–Yates, iterating from the back like the real crate.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}
