//! `SmallRng`: xoshiro256++ — the identical algorithm behind real
//! `rand 0.8`'s 64-bit `SmallRng` (via `rand_xoshiro`).

use crate::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // Same SplitMix64 expansion rand_core uses to fill the seed words.
        let mut st = state;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut st);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}
