//! Dependency-free stand-in for the subset of `rand 0.8` this workspace
//! uses. `SmallRng` is the same xoshiro256++ generator (with SplitMix64
//! `seed_from_u64` expansion) as the real crate, and every sampling
//! routine below reproduces `rand 0.8`'s algorithm bit-for-bit — the
//! widening-multiply integer uniform (`sample_single_inclusive`), the
//! `[1, 2)` mantissa-fill float uniform, the fixed-point `Bernoulli`,
//! and `SliceRandom`'s u32-widened `gen_index` — so seeded streams
//! match what the real crate would produce.

pub mod rngs;
pub mod seq;

/// Core generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Mirrors `rand::SeedableRng`; only the `seed_from_u64` entry point is
/// exercised by this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution via `Rng::gen`.
/// Value mappings mirror `rand 0.8`'s `Standard`: sub-32-bit integers
/// truncate a `next_u32` draw, `bool` is the sign bit of a `next_u32`
/// draw, floats use the high mantissa+1 bits of one native-width draw.
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl StandardSample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 compares the most significant bit via a sign test.
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand 0.8's
    /// multiply-based `Standard` construction).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by `Rng::gen_range` (mirrors `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn wmul_u32(a: u32, b: u32) -> (u32, u32) {
    let t = (a as u64) * (b as u64);
    ((t >> 32) as u32, t as u32)
}

fn wmul_u64(a: u64, b: u64) -> (u64, u64) {
    let t = (a as u128) * (b as u128);
    ((t >> 64) as u64, t as u64)
}

/// rand 0.8 `sample_single_inclusive` for types up to 16 bits wide:
/// the span is widened to a u32 draw and the biased tail rejected
/// against a modulo-derived zone.
fn uniform_small_u32<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
    debug_assert!(range > 0);
    let ints_to_reject = (u32::MAX - range + 1) % range;
    let zone = u32::MAX - ints_to_reject;
    loop {
        let (hi, lo) = wmul_u32(rng.next_u32(), range);
        if lo <= zone {
            return hi;
        }
    }
}

/// rand 0.8 `sample_single_inclusive` for 32-bit types: bitshift zone.
fn uniform_u32<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let (hi, lo) = wmul_u32(rng.next_u32(), range);
        if lo <= zone {
            return hi;
        }
    }
}

/// rand 0.8 `sample_single_inclusive` for 64-bit types: bitshift zone.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let (hi, lo) = wmul_u64(rng.next_u64(), range);
        if lo <= zone {
            return hi;
        }
    }
}

/// Implements both range forms for an integer type. `$un` is the
/// same-width unsigned type, `$sampler` one of the `uniform_*` helpers,
/// and `$large` its draw width. Exclusive ranges delegate to the
/// inclusive sampler on `end - 1`, exactly like rand 0.8's
/// `sample_single`.
macro_rules! impl_int_range {
    ($($t:ty => $un:ty, $large:ty, $sampler:ident);* $(;)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                (self.start..=self.end - 1).sample_from(rng)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with an empty range");
                let range = (hi as $un).wrapping_sub(lo as $un).wrapping_add(1) as $large;
                if range == 0 {
                    // The span covers the whole type: every draw is fair.
                    return <$un as StandardSample>::sample(rng) as $t;
                }
                lo.wrapping_add($sampler(rng, range) as $t)
            }
        }
    )*};
}

impl_int_range! {
    u8 => u8, u32, uniform_small_u32;
    u16 => u16, u32, uniform_small_u32;
    u32 => u32, u32, uniform_u32;
    u64 => u64, u64, uniform_u64;
    usize => usize, u64, uniform_u64;
    i8 => u8, u32, uniform_small_u32;
    i16 => u16, u32, uniform_small_u32;
    i32 => u32, u32, uniform_u32;
    i64 => u64, u64, uniform_u64;
    isize => usize, u64, uniform_u64;
}

/// rand 0.8 `UniformFloat::sample_single`: fill the mantissa to get a
/// value in `[1, 2)`, shift to `[0, 1)`, then scale. The retry arm
/// (rounding pushed the result onto `end`) backs the scale off by one
/// ULP, preserving rand's "never returns `end`" contract.
macro_rules! impl_float_range {
    ($($t:ty => $u:ty, $next:ident, $discard:expr, $bias_bits:expr);* $(;)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let mut scale = self.end - self.start;
                loop {
                    let value1_2 =
                        <$t>::from_bits((rng.$next() >> $discard) | $bias_bits);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + self.start;
                    if res < self.end {
                        return res;
                    }
                    scale = <$t>::from_bits(scale.to_bits() - 1);
                }
            }
        }
    )*};
}

impl_float_range! {
    f64 => u64, next_u64, 12, 1023u64 << 52;
    f32 => u32, next_u32, 9, 127u32 << 23;
}

/// User-facing convenience methods (mirrors `rand::Rng`), blanket-implemented
/// for every `RngCore` like the real crate.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// rand 0.8 `Bernoulli`: 64-bit fixed-point compare. `p == 1.0`
    /// returns `true` without consuming a draw, like the real crate.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * 2.0 * (1u64 << 63) as f64) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
