//! Record-and-replay comparison: capture the exact packet schedule of
//! one run (via the trace sink), then replay the *identical* schedule
//! through all three router architectures — removing traffic-sampling
//! noise from the comparison entirely.
//!
//! Run with `cargo run --release --example replay_comparison`.

use roco_noc::prelude::*;
use roco_noc::sim::{replay_entries, TraceEvent, TraceSink};
use roco_noc::traffic::ReplayTraffic;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Default)]
struct Recorder(Rc<RefCell<Vec<TraceEvent>>>);

impl TraceSink for Recorder {
    fn record(&mut self, event: TraceEvent) {
        self.0.borrow_mut().push(event);
    }
}

fn base() -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 500;
    cfg.measured_packets = 8_000;
    cfg.injection_rate = 0.25;
    cfg
}

fn main() {
    // 1. Record the schedule produced by the default uniform generator.
    let store = Rc::new(RefCell::new(Vec::new()));
    let mut recorder_sim = Simulation::new(base());
    recorder_sim.set_trace_sink(Box::new(Recorder(store.clone())));
    while !recorder_sim.finished() {
        recorder_sim.step();
    }
    drop(recorder_sim);
    let events = Rc::try_unwrap(store).expect("sole owner").into_inner();
    let schedule = replay_entries(&events);
    println!("recorded {} packets; replaying the identical schedule:\n", schedule.len());

    // 2. Replay it bit-for-bit through each architecture.
    println!(
        "{:>15} | {:>9} {:>7} {:>7} {:>10} {:>9}",
        "router", "latency", "p95", "p99", "energy nJ", "cycles"
    );
    for router in RouterKind::ALL {
        let mut cfg = base();
        cfg.router = router;
        let traffic = ReplayTraffic::new(cfg.mesh, schedule.clone(), 4);
        let mut sim = Simulation::with_traffic(cfg, Box::new(traffic));
        while !sim.finished() {
            sim.step();
        }
        let r = sim.results();
        assert_eq!(r.completion_probability(), 1.0);
        println!(
            "{router:>15} | {:>9.2} {:>7} {:>7} {:>10.3} {:>9}",
            r.avg_latency,
            r.latency_p95,
            r.latency_p99,
            r.energy_per_packet * 1e9,
            r.cycles
        );
    }
    println!("\nSame packets, same instants — the remaining differences are purely");
    println!("microarchitectural (crossbar organization, allocators, ejection).");
}
