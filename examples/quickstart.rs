//! Quickstart: simulate an 8×8 mesh of RoCo routers and print the core
//! performance/energy numbers, then compare against the two baseline
//! architectures at the same operating point.
//!
//! Run with `cargo run --release --example quickstart`.

use roco_noc::prelude::*;

fn main() {
    println!("RoCo quickstart — 8×8 mesh, XY routing, uniform traffic @ 0.25 flits/node/cycle\n");

    for router in RouterKind::ALL {
        let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Uniform);
        cfg.warmup_packets = 1_000;
        cfg.measured_packets = 10_000;
        cfg.injection_rate = 0.25;

        let results = roco_noc::sim::run(cfg);
        println!("{router:>15}:");
        println!("    avg latency        {:>8.2} cycles", results.avg_latency);
        println!("    max latency        {:>8} cycles", results.max_latency);
        println!("    energy per packet  {:>8.3} nJ", results.energy_per_packet * 1e9);
        println!(
            "    completion         {:>8.3} ({} delivered / {} injected)",
            results.completion_probability(),
            results.measured_delivered,
            results.measured_injected,
        );
        println!(
            "    SA contention      {:>8.3}",
            results.contention.total_contention_probability().unwrap_or(0.0)
        );
        println!("    PEF (fault-free ⇒ EDP) {:.2} nJ·cycles\n", results.pef_inputs().pef() * 1e9);
    }

    println!("Expected shape (paper §5.4): RoCo has the lowest latency, the lowest");
    println!("energy per packet and the lowest contention of the three architectures.");
}
