//! Graceful degradation demo (§4): inject hard faults into the mesh and
//! watch how each architecture reacts — the baselines lose whole nodes,
//! while the RoCo router isolates single modules (critical faults) or
//! recycles hardware to bypass the failure entirely (non-critical
//! faults).
//!
//! Run with `cargo run --release --example graceful_degradation`.

use roco_noc::prelude::*;

fn run_with_faults(router: RouterKind, category: FaultCategory, faults: usize) -> SimResults {
    let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 500;
    cfg.measured_packets = 8_000;
    cfg.injection_rate = 0.3;
    cfg.stall_window = 4_000;
    cfg.faults = FaultPlan::random(category, faults, cfg.mesh, 2026);
    roco_noc::sim::run(cfg)
}

fn main() {
    println!("Fault tolerance through Hardware Recycling (paper §4)\n");
    println!("Reactions to a component fault:");
    for component in [
        FaultComponent::RoutingComputation,
        FaultComponent::VcBuffer,
        FaultComponent::VaArbiter,
        FaultComponent::SaArbiter,
        FaultComponent::Crossbar,
    ] {
        println!(
            "  {component:?}: generic ⇒ {:?}, RoCo ⇒ {:?}",
            roco_noc::fault::reaction(RouterKind::Generic, component),
            roco_noc::fault::reaction(RouterKind::RoCo, component),
        );
    }

    for (category, label) in [
        (FaultCategory::Isolating, "router-centric / critical faults (Fig 11)"),
        (FaultCategory::Recyclable, "message-centric / non-critical faults (Fig 12)"),
    ] {
        println!("\n== {label} ==");
        println!("{:>15} | {:>10} {:>10} {:>10}", "router", "1 fault", "2 faults", "4 faults");
        for router in RouterKind::ALL {
            let mut cells = Vec::new();
            for n in [1, 2, 4] {
                let r = run_with_faults(router, category, n);
                cells.push(format!("{:>10.3}", r.completion_probability()));
            }
            println!("{router:>15} | {}", cells.join(" "));
        }
    }

    println!("\nThe RoCo router completes every packet under non-critical faults");
    println!("(Hardware Recycling) and degrades most gracefully under critical ones");
    println!("(one module isolated instead of the whole node).");
}
