//! Workload explorer: sweep every traffic family (including the
//! hotspot / bit-complement / MPEG-2 extensions) over the three routing
//! algorithms on the RoCo router, and print the latency landscape.
//!
//! Run with `cargo run --release --example traffic_explorer`.

use roco_noc::prelude::*;

fn main() {
    println!("RoCo router — latency (cycles) per workload and routing algorithm");
    println!("8×8 mesh, 0.25 flits/node/cycle\n");
    println!("{:>15} | {:>9} {:>9} {:>9}", "traffic", "xy", "xy-yx", "adaptive");
    for traffic in TrafficKind::ALL {
        let mut cells = Vec::new();
        for routing in RoutingKind::ALL {
            let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, routing, traffic);
            cfg.warmup_packets = 500;
            cfg.measured_packets = 8_000;
            cfg.injection_rate = 0.25;
            let r = roco_noc::sim::run(cfg);
            let flag = if r.stalled { "*" } else { "" };
            cells.push(format!("{:>8.1}{flag}", r.avg_latency));
        }
        println!("{:>15} | {}", traffic.to_string(), cells.join(" "));
    }
    println!("\nAdaptive routing helps the adversarial permutations (transpose,");
    println!("bit-complement) and the hotspot most; uniform traffic favours XY,");
    println!("as §3.2 notes. (* = run hit the inactivity detector.)");
}
