//! Building a custom experiment against the public API: a 12×12 mesh,
//! a hand-placed crossbar fault next to a hotspot, a per-cycle stepping
//! loop with live inspection, and PEF evaluation at the end.
//!
//! Run with `cargo run --release --example custom_experiment`.

use roco_noc::core::{Axis, ComponentFault, Coord, FaultComponent, MeshConfig};
use roco_noc::prelude::*;

fn main() {
    // A larger mesh than the paper's, to show the simulator is fully
    // parameterizable (§5.1).
    let mut cfg =
        SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Adaptive, TrafficKind::Hotspot);
    cfg.mesh = MeshConfig::new(12, 12);
    cfg.warmup_packets = 500;
    cfg.measured_packets = 6_000;
    cfg.injection_rate = 0.15;
    cfg.stall_window = 4_000;
    // Break the Row module's crossbar right next to the hotspot node.
    cfg.faults =
        FaultPlan::single(Coord::new(6, 6), ComponentFault::new(FaultComponent::Crossbar, Axis::X));

    let mut sim = Simulation::new(cfg);
    // Drive the simulation manually and sample the in-flight population.
    let mut peak_in_flight = 0;
    while !sim.finished() {
        sim.step();
        if sim.cycle() % 64 == 0 {
            peak_in_flight = peak_in_flight.max(sim.flits_in_system());
        }
    }
    let results = sim.results();

    println!("12×12 mesh, hotspot traffic, adaptive routing, Row-module crossbar fault at (6,6)\n");
    println!("cycles simulated     {}", results.cycles);
    println!("peak flits in flight {peak_in_flight}");
    println!("avg latency          {:.2} cycles", results.avg_latency);
    println!("completion           {:.4}", results.completion_probability());
    println!("energy per packet    {:.3} nJ", results.energy_per_packet * 1e9);
    println!("PEF                  {:.2} nJ·cycles/completion", results.pef_inputs().pef() * 1e9);
    println!();
    println!("Adaptive routing detours around the dead Row module, so completion");
    println!("stays near 1.0 even though the faulty node can no longer forward");
    println!("East/West traffic. Early Ejection keeps node (6,6) itself reachable.");
}
