//! # roco-noc
//!
//! A from-scratch reproduction of **"A Gracefully Degrading and
//! Energy-Efficient Modular Router Architecture for On-Chip Networks"**
//! (Kim et al., ISCA 2006) — the **RoCo** Row-Column decoupled router —
//! including the full evaluation platform: a flit-level cycle-accurate
//! mesh simulator, the generic and Path-Sensitive baseline routers, the
//! three routing algorithms, the §4 fault model with Hardware
//! Recycling, the §5.2 energy model and the §5.3 PEF metric.
//!
//! This crate is a facade: it re-exports the workspace crates under
//! stable module names. Depend on it to get everything, or on the
//! individual `noc-*` crates for a narrower footprint.
//!
//! # Quickstart
//!
//! ```
//! use roco_noc::prelude::*;
//!
//! // An 8×8 mesh of RoCo routers under XY routing, uniform traffic at
//! // 0.2 flits/node/cycle.
//! let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
//! cfg.warmup_packets = 100;
//! cfg.measured_packets = 1_000;
//! cfg.injection_rate = 0.2;
//! let results = roco_noc::sim::run(cfg);
//! assert_eq!(results.completion_probability(), 1.0);
//! println!("avg latency: {:.1} cycles", results.avg_latency);
//! ```

#![warn(missing_docs)]

/// Core data model (geometry, flits, VCs, configuration).
pub use noc_core as core;

/// Arbiters and switch allocators (round-robin, matrix, Mirror, separable).
pub use noc_arbiter as arbiter;

/// Routing algorithms (XY, XY-YX, west-first/odd-even adaptive, quadrants).
pub use noc_routing as routing;

/// Traffic generators (uniform, transpose, self-similar, MPEG, …).
pub use noc_traffic as traffic;

/// Energy model and the PEF metric.
pub use noc_power as power;

/// Fault taxonomy, reactions and injection plans.
pub use noc_fault as fault;

/// The three router microarchitectures.
pub use noc_router as router;

/// The cycle-accurate network simulator.
pub use noc_sim as sim;

/// Analytic models (Table 2's F(N), Fig 2's arbiter complexity).
pub use noc_analysis as analysis;

/// Steady-state thermal model (extension: the paper's future work).
pub use noc_thermal as thermal;

/// Channel-dependency-graph deadlock-freedom verification.
pub use noc_deadlock as deadlock;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use noc_core::{
        Axis, AxisOrder, ComponentFault, Coord, Direction, FaultComponent, MeshConfig,
        RouterConfig, RouterKind, RouterNode, RoutingKind, VcClass,
    };
    pub use noc_fault::{FaultCategory, FaultPlan, Reaction};
    pub use noc_power::{PefInputs, RouterEnergyProfile};
    pub use noc_router::AnyRouter;
    pub use noc_sim::{SimConfig, SimResults, Simulation};
    pub use noc_traffic::TrafficKind;
}
