#!/usr/bin/env bash
# Records both regression baselines from scratch and stages them:
#
#   - goldens/*.txt            (golden regression corpus, `golden --update`)
#   - BENCH_sim_throughput.json (throughput baseline, ungated perf run)
#
# Run on the machine class that CI uses so the recorded numbers gate
# future runs meaningfully, then commit the staged files. The
# adopt-baselines workflow (workflow_dispatch) runs this on a CI runner
# and pushes the result, flipping NOC_GOLDEN_STRICT/NOC_BENCH_STRICT
# from failing-on-pending to guarding real baselines.
#
#   scripts/record_baselines.sh            # record + stage
#   NO_STAGE=1 scripts/record_baselines.sh # record only
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO=${CARGO:-cargo}

echo "[baselines] regenerating the golden corpus"
$CARGO run --release -p noc-bench --bin golden -- --update

echo "[baselines] recording the throughput baseline (gate off for the recording run)"
NOC_BENCH_GATE=0 NOC_BENCH_STRICT=0 NOC_SCALE=${NOC_SCALE:-quick} \
    $CARGO run --release -p noc-bench --bin perf

if [[ "${NO_STAGE:-0}" != "1" ]]; then
    git add goldens/*.txt BENCH_sim_throughput.json
    echo "[baselines] staged:"
    git status --short goldens BENCH_sim_throughput.json
fi
