#!/usr/bin/env bash
# Offline build/test harness: runs any cargo command against the
# dependency-free stubs in devstubs/ (see devstubs/README.md).
#
#   scripts/offline_check.sh build --release
#   scripts/offline_check.sh test -q
#
# The root Cargo.toml is patched in place for the duration of the cargo
# invocation and always restored, even on failure or Ctrl-C. A separate
# target directory keeps stub artifacts out of the normal build cache.
set -euo pipefail
cd "$(dirname "$0")/.."

if grep -q '^\[patch\.crates-io\]' Cargo.toml; then
    echo "offline_check: Cargo.toml already contains a [patch.crates-io] section" >&2
    exit 1
fi

cp Cargo.toml Cargo.toml.offline-bak
restore() { mv -f Cargo.toml.offline-bak Cargo.toml; }
trap restore EXIT

cat devstubs/patch.toml >> Cargo.toml
# --offline goes right after the cargo subcommand so that trailing
# program arguments (after a `--` separator) are left untouched.
sub="$1"
shift
CARGO_TARGET_DIR="${CARGO_TARGET_DIR:-target/offline}" cargo "$sub" --offline "$@"
